// Critical Service Localization Phase (Section 3.2, inspired by FIRM).
//
// Two-step method:
//   1. resource utilization — services running hot are candidates;
//   2. Pearson correlation of each service's per-request processing time
//      PT_si against the end-to-end response time of the critical path
//      RT_CP — the service whose processing time explains the latency
//      variation is the critical one.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/ids.h"
#include "common/time.h"
#include "trace/warehouse.h"

namespace sora {

class Application;

struct ServiceDiagnostics {
  ServiceId service;
  double utilization = 0.0;    ///< mean CPU utilization over the window (0..1)
  double pcc = 0.0;            ///< PCC(PT_si, RT_CP)
  double mean_pt_ms = 0.0;     ///< mean processing time on critical paths
  std::size_t cp_appearances = 0;  ///< traces whose critical path contains it
};

struct CriticalServiceReport {
  ServiceId critical;          ///< combined verdict (invalid if none found)
  ServiceId by_utilization;    ///< step-1 winner
  ServiceId by_correlation;    ///< step-2 winner
  std::vector<ServiceDiagnostics> services;  ///< per-service detail
  std::size_t traces_analyzed = 0;
};

struct LocalizerOptions {
  /// Step-1 candidate threshold: utilization above this marks a candidate.
  double utilization_threshold = 0.5;
  /// Minimum critical-path appearances for the PCC to be trusted.
  std::size_t min_cp_appearances = 10;
};

/// Pearson ranking implied by a localization report: services ordered by
/// descending PCC, with the report's combined verdict forced to the front
/// (the verdict folds in utilization, which raw PCC ordering ignores).
/// Ties broken by service id for deterministic output.
std::vector<ServiceId> ranked_by_pcc(const CriticalServiceReport& report);

/// Agreement check between the observational (Pearson) localizer and an
/// experimentally measured causal ranking (most-latency-causal first).
/// The two answer different questions — "what correlates with tail latency"
/// vs "what, if sped up, would reduce it" — and the divergence regimes are
/// exactly what fig10's agreement table documents.
struct LocalizerCrossCheck {
  ServiceId pearson_pick;  ///< report.critical
  ServiceId causal_pick;   ///< head of the causal ranking (invalid if empty)
  bool agree = false;      ///< both valid and equal
  /// 0-based position of the causal pick within the Pearson ranking
  /// (SIZE_MAX when absent) and vice versa — how far apart the two methods
  /// place each other's winner.
  std::size_t causal_pick_pearson_rank = SIZE_MAX;
  std::size_t pearson_pick_causal_rank = SIZE_MAX;
};

LocalizerCrossCheck cross_validate(const CriticalServiceReport& report,
                                   const std::vector<ServiceId>& causal_ranking);

class CriticalServiceLocalizer {
 public:
  CriticalServiceLocalizer(Application& app, const TraceWarehouse& warehouse,
                           LocalizerOptions options = {});

  /// Mark the start of a measurement window (snapshots CPU integrals).
  void begin_window();

  /// Analyze traces completed in [window start, now] and return the report.
  CriticalServiceReport analyze();

 private:
  Application& app_;
  const TraceWarehouse& warehouse_;
  LocalizerOptions options_;

  SimTime window_start_ = 0;
  // per-service busy-integral snapshot at window start
  std::map<std::uint64_t, double> busy_snapshot_;
};

}  // namespace sora
