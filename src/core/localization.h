// Critical Service Localization Phase (Section 3.2, inspired by FIRM).
//
// Two-step method:
//   1. resource utilization — services running hot are candidates;
//   2. Pearson correlation of each service's per-request processing time
//      PT_si against the end-to-end response time of the critical path
//      RT_CP — the service whose processing time explains the latency
//      variation is the critical one.
//
// Step 2 streams: the localizer registers a store listener on the trace
// warehouse and folds each trace's critical path into per-service
// co-moment accumulators as it completes. A control round's analyze() then
// costs O(services) instead of re-extracting critical paths for every trace
// in the window — the dominant per-round cost at high trace rates (see
// bench/micro_model_cost for the sweep).
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "common/time.h"
#include "trace/warehouse.h"

namespace sora {

class Application;

struct ServiceDiagnostics {
  ServiceId service;
  double utilization = 0.0;    ///< mean CPU utilization over the window (0..1)
  double pcc = 0.0;            ///< PCC(PT_si, RT_CP)
  double mean_pt_ms = 0.0;     ///< mean processing time on critical paths
  std::size_t cp_appearances = 0;  ///< traces whose critical path contains it
};

struct CriticalServiceReport {
  ServiceId critical;          ///< combined verdict (invalid if none found)
  ServiceId by_utilization;    ///< step-1 winner
  ServiceId by_correlation;    ///< step-2 winner
  std::vector<ServiceDiagnostics> services;  ///< per-service detail
  std::size_t traces_analyzed = 0;
};

struct LocalizerOptions {
  /// Step-1 candidate threshold: utilization above this marks a candidate.
  double utilization_threshold = 0.5;
  /// Minimum critical-path appearances for the PCC to be trusted.
  std::size_t min_cp_appearances = 10;
  /// Cap the per-service detail in the report to the top-k entries by PCC
  /// (the combined verdict's entry is always kept, appended if it fell
  /// outside the top k). 0 = full report sorted by PCC, the historical
  /// behaviour. At thousands of services the full O(n log n) sort — and
  /// the report copy consumers then scan — dominates the round; top-k
  /// replaces it with an O(n log k) partial sort. The verdict itself is
  /// computed before any ranking and is identical in both modes.
  std::size_t top_k = 0;
};

/// Work performed by one localization round (begin_window .. analyze),
/// counted in ops rather than wall-clock so scale guards stay meaningful
/// under sanitizers and on loaded CI machines. The round cost must stay
/// O(services + traces·depth): nothing here may scale with
/// services × traces.
struct LocalizerRoundCost {
  std::size_t services_scanned = 0;      ///< step-1 utilization pass length
  std::size_t accumulators_folded = 0;   ///< step-2 entries with samples
  std::size_t sort_comparisons = 0;      ///< comparator calls while ranking
  std::size_t traces_folded = 0;         ///< traces folded since window start
  std::size_t hops_folded = 0;           ///< critical-path hops folded
  std::size_t total() const {
    return services_scanned + accumulators_folded + sort_comparisons +
           traces_folded + hops_folded;
  }
};

/// Streaming Pearson state: single-pass co-moment accumulation with a
/// first-sample shift (sums run over x - x0, y - y0), which keeps the
/// centered sums numerically stable without a second pass — the naive
/// Σxy - ΣxΣy/n form cancels catastrophically when means dwarf variances,
/// as they do for microsecond timestamps. r() matches the two-pass
/// stats::pearson within floating-point tolerance, including its
/// conventions: fewer than two samples or a constant series yields 0.
struct CorrelationAccumulator {
  std::uint64_t n = 0;
  double kx = 0.0, ky = 0.0;             ///< shifts (first sample)
  double sx = 0.0, sy = 0.0;             ///< Σ(x-kx), Σ(y-ky)
  double sxx = 0.0, syy = 0.0, sxy = 0.0;  ///< shifted second moments

  void add(double x, double y) {
    if (n == 0) {
      kx = x;
      ky = y;
    }
    const double dx = x - kx;
    const double dy = y - ky;
    ++n;
    sx += dx;
    sy += dy;
    sxx += dx * dx;
    syy += dy * dy;
    sxy += dx * dy;
  }

  double mean_x() const {
    return n == 0 ? 0.0 : kx + sx / static_cast<double>(n);
  }

  /// Pearson correlation of everything added so far.
  double r() const {
    if (n < 2) return 0.0;
    const double inv_n = 1.0 / static_cast<double>(n);
    const double cxx = sxx - sx * sx * inv_n;
    const double cyy = syy - sy * sy * inv_n;
    const double cxy = sxy - sx * sy * inv_n;
    if (cxx <= 0.0 || cyy <= 0.0) return 0.0;
    return cxy / std::sqrt(cxx * cyy);
  }

  void reset() { *this = CorrelationAccumulator{}; }
};

/// Pearson ranking implied by a localization report: services ordered by
/// descending PCC, with the report's combined verdict forced to the front
/// (the verdict folds in utilization, which raw PCC ordering ignores).
/// Ties broken by service id for deterministic output.
std::vector<ServiceId> ranked_by_pcc(const CriticalServiceReport& report);

/// Agreement check between the observational (Pearson) localizer and an
/// experimentally measured causal ranking (most-latency-causal first).
/// The two answer different questions — "what correlates with tail latency"
/// vs "what, if sped up, would reduce it" — and the divergence regimes are
/// exactly what fig10's agreement table documents.
struct LocalizerCrossCheck {
  ServiceId pearson_pick;  ///< report.critical
  ServiceId causal_pick;   ///< head of the causal ranking (invalid if empty)
  bool agree = false;      ///< both valid and equal
  /// 0-based position of the causal pick within the Pearson ranking
  /// (SIZE_MAX when absent) and vice versa — how far apart the two methods
  /// place each other's winner.
  std::size_t causal_pick_pearson_rank = SIZE_MAX;
  std::size_t pearson_pick_causal_rank = SIZE_MAX;
};

LocalizerCrossCheck cross_validate(const CriticalServiceReport& report,
                                   const std::vector<ServiceId>& causal_ranking);

class CriticalServiceLocalizer {
 public:
  /// Registers a store listener on `warehouse`: both must outlive this
  /// localizer, and the warehouse must not store traces after it dies.
  CriticalServiceLocalizer(Application& app, TraceWarehouse& warehouse,
                           LocalizerOptions options = {});

  /// Mark the start of a measurement window (snapshots CPU integrals,
  /// resets the correlation accumulators, and re-folds any already-stored
  /// traces whose completion falls at or after the new window start).
  void begin_window();

  /// Analyze traces completed in [window start, now] and return the report.
  CriticalServiceReport analyze();

  /// Op-count of the most recent analyze() round (plus the folds feeding
  /// it). Valid after the first analyze().
  const LocalizerRoundCost& last_round_cost() const { return last_cost_; }

 private:
  /// Fold one completed trace's critical path into the accumulators.
  void accumulate(const Trace& t);

  Application& app_;
  TraceWarehouse& warehouse_;
  LocalizerOptions options_;

  SimTime window_start_ = 0;
  // Dense per-service state indexed by ServiceId value (the service set is
  // fixed after construction). Dense vectors iterate in ascending-id order
  // exactly like the std::maps they replaced, so reports — and therefore
  // decision logs — stay byte-identical; what changes is the per-round
  // cost: the buffers are allocated once and reset in place each window
  // instead of being torn down and re-grown node by node.
  std::vector<double> busy_snapshot_;
  // Streaming PCC(PT_si, RT_CP) state for the current window. Fed by the
  // warehouse store listener (trace-completion context, which in sharded
  // runs is always shard 0 — entry services live there — so this state is
  // lane-confined); read by analyze() in control-round context.
  std::vector<CorrelationAccumulator> accum_;
  // analyze() scratch, reused across rounds.
  std::vector<ServiceDiagnostics> diag_;
  std::size_t window_traces_ = 0;
  std::size_t window_hops_ = 0;
  LocalizerRoundCost last_cost_;
};

}  // namespace sora
