#include "core/hillclimb.h"

#include <algorithm>

#include "common/log.h"

namespace sora {

HillClimbTuner::HillClimbTuner(Simulator& sim, Tracer& tracer,
                               const ResourceKnob& knob,
                               HillClimbOptions options)
    : sim_(sim), knob_(knob), options_(options) {
  sampler_ = std::make_unique<ScatterSampler>(
      sim, tracer, knob, msec(100), options_.rt_threshold,
      static_cast<std::size_t>(options_.period / msec(100)) * 4 + 16);
}

HillClimbTuner::~HillClimbTuner() { stop(); }

void HillClimbTuner::start() {
  if (running_) return;
  running_ = true;
  sampler_->start();
  window_start_ = sim_.now();
  tick_ = sim_.schedule_periodic(options_.period, [this] { tick(); });
}

void HillClimbTuner::stop() {
  running_ = false;
  tick_.cancel();
  sampler_->stop();
}

double HillClimbTuner::window_goodput() const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const SamplePoint& p : sampler_->points_since(window_start_)) {
    sum += p.goodput;
    ++n;
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

void HillClimbTuner::tick() {
  const double goodput = window_goodput();
  if (last_goodput_ >= 0.0) {
    const double base = std::max(last_goodput_, 1e-9);
    const double change = (goodput - last_goodput_) / base;
    if (change < -options_.tolerance) {
      direction_ = -direction_;  // worse: go back the other way
    }
    // better or flat: keep climbing in the same direction.
  }
  const int next = std::clamp(knob_.current_size() + direction_ * options_.step,
                              options_.min_size, options_.max_size);
  if (next != knob_.current_size()) {
    knob_.apply(next);
    ++steps_;
    SORA_DEBUG << "hillclimb: " << knob_.label() << " -> " << next
               << " (goodput " << goodput << ")";
  }
  last_goodput_ = goodput;
  window_start_ = sim_.now();
}

}  // namespace sora
