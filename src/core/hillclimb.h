// Step-by-step online tuning baseline.
//
// Section 3.1 of the paper dismisses "step-by-step heuristic approaches
// such as Bayesian optimization" for runtime concurrency adaptation because
// they converge too slowly for bursty workloads. This class implements the
// classic online hill climber those systems reduce to in the single-knob
// case: each control period it measures the knob's goodput, compares
// against the previous period, and keeps or reverses its step direction.
// The ablation bench (ablation_convergence) races it against the SCG model
// from identical cold starts.
#pragma once

#include <memory>

#include "metrics/knob.h"
#include "metrics/scatter_sampler.h"
#include "sim/simulator.h"
#include "trace/tracer.h"

namespace sora {

struct HillClimbOptions {
  SimTime period = sec(15);       ///< evaluation window per step
  int step = 2;                   ///< pool-size increment per move
  int min_size = 1;
  int max_size = 512;
  SimTime rt_threshold = msec(50);  ///< goodput deadline (static — no
                                    ///< propagation; that is the point)
  /// Relative goodput change below this counts as "no change" and keeps
  /// the current direction (prevents dithering on noise).
  double tolerance = 0.03;
};

class HillClimbTuner {
 public:
  HillClimbTuner(Simulator& sim, Tracer& tracer, const ResourceKnob& knob,
                 HillClimbOptions options = {});
  ~HillClimbTuner();

  HillClimbTuner(const HillClimbTuner&) = delete;
  HillClimbTuner& operator=(const HillClimbTuner&) = delete;

  void start();
  void stop();

  int current_size() const { return knob_.current_size(); }
  std::uint64_t steps_taken() const { return steps_; }
  const ResourceKnob& knob() const { return knob_; }

 private:
  void tick();
  double window_goodput() const;

  Simulator& sim_;
  ResourceKnob knob_;
  HillClimbOptions options_;
  std::unique_ptr<ScatterSampler> sampler_;

  int direction_ = +1;
  double last_goodput_ = -1.0;
  SimTime window_start_ = 0;
  std::uint64_t steps_ = 0;
  EventHandle tick_;
  bool running_ = false;
};

}  // namespace sora
