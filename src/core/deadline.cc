#include "core/deadline.h"

#include <algorithm>

#include "obs/profiler.h"
#include "trace/critical_path.h"

namespace sora {

DeadlineResult propagate_deadline(const TraceWarehouse& warehouse, SimTime from,
                                  SimTime to, ServiceId critical, SimTime sla,
                                  const DeadlineOptions& options) {
  SORA_PROFILE_STAGE("sora.deadline_prop");
  DeadlineResult result;
  double upstream_sum = 0.0;
  // Systematic sampling bound: count the matching traces first (cheap — no
  // critical-path extraction), then fold every stride-th one.
  std::size_t stride = 1;
  if (options.max_traces > 0) {
    std::size_t matching = 0;
    warehouse.for_each_in_window(from, to, [&](const Trace& t) {
      if (options.request_class >= 0 &&
          t.request_class != options.request_class) {
        return;
      }
      ++matching;
    });
    stride = (matching + options.max_traces - 1) /
             std::max<std::size_t>(1, options.max_traces);
    if (stride == 0) stride = 1;
  }
  std::size_t seen = 0;
  warehouse.for_each_in_window(from, to, [&](const Trace& t) {
    if (options.request_class >= 0 && t.request_class != options.request_class) {
      return;
    }
    if (seen++ % stride != 0) return;
    const CriticalPath cp = [&] {
      SORA_PROFILE_STAGE("trace.critical_path");
      return extract_critical_path(t);
    }();
    const SimTime upstream = upstream_processing_time(cp, critical);
    if (upstream < 0) return;  // critical service not on this path
    upstream_sum += static_cast<double>(upstream);
    ++result.traces_used;
  });

  if (result.traces_used == 0) return result;

  result.mean_upstream_pt = static_cast<SimTime>(
      upstream_sum / static_cast<double>(result.traces_used));
  const SimTime floor = std::max(
      options.min_threshold,
      static_cast<SimTime>(options.min_fraction_of_sla *
                           static_cast<double>(sla)));
  result.rt_threshold = std::max(floor, sla - result.mean_upstream_pt);
  result.valid = true;
  return result;
}

}  // namespace sora
