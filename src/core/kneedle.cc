#include "core/kneedle.h"

#include <algorithm>
#include <cmath>

namespace sora {

std::optional<KneeResult> kneedle(std::span<const double> xs,
                                  std::span<const double> ys,
                                  const KneedleOptions& options) {
  std::size_t n = std::min(xs.size(), ys.size());
  if (n < 5) return std::nullopt;

  // Optionally truncate to the rising segment [start, argmax(y)].
  if (options.restrict_to_rising) {
    std::size_t peak = 0;
    for (std::size_t i = 1; i < n; ++i) {
      if (ys[i] > ys[peak]) peak = i;
    }
    n = peak + 1;
    if (n < 5) return std::nullopt;
  }

  const double x_min = xs[0];
  const double x_max = xs[n - 1];
  double y_min = ys[0], y_max = ys[0];
  for (std::size_t i = 1; i < n; ++i) {
    y_min = std::min(y_min, ys[i]);
    y_max = std::max(y_max, ys[i]);
  }
  if (x_max <= x_min || y_max <= y_min) return std::nullopt;

  // Normalize to the unit square and build the difference curve
  // d_i = y_n(i) - x_n(i) (concave increasing form).
  std::vector<double> xn(n), dn(n);
  for (std::size_t i = 0; i < n; ++i) {
    xn[i] = (xs[i] - x_min) / (x_max - x_min);
    const double yni = (ys[i] - y_min) / (y_max - y_min);
    dn[i] = yni - xn[i];
  }

  // Mean spacing of normalized x, used in the sensitivity threshold.
  const double mean_dx = 1.0 / static_cast<double>(n - 1);

  // Scan for local maxima of the difference curve; a local max is a knee if
  // d falls below (d_lmx - S * mean_dx) before the next local max (or end).
  std::optional<KneeResult> best;
  for (std::size_t i = 1; i + 1 < n; ++i) {
    const bool local_max = dn[i] >= dn[i - 1] && dn[i] >= dn[i + 1];
    if (!local_max) continue;
    const double threshold = dn[i] - options.sensitivity * mean_dx;
    for (std::size_t j = i + 1; j < n; ++j) {
      const bool next_is_lmx =
          j + 1 < n && dn[j] >= dn[j - 1] && dn[j] >= dn[j + 1] && dn[j] > dn[i];
      if (next_is_lmx) break;  // superseded by a higher local max
      if (dn[j] < threshold) {
        // Confirmed knee.
        if (!best) {
          best = KneeResult{xs[i], ys[i], i};
        }
        break;
      }
    }
    if (best) break;  // Kneedle reports the first confirmed knee
  }
  return best;
}

}  // namespace sora
