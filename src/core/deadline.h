// RT Threshold Propagation Phase (Section 3.2, Eq. 1-3).
//
// The response-time threshold (local deadline) of the critical service s_i
// is the end-to-end SLA minus the processing time of every upstream service
// on the critical path:
//
//     RTT_si <= SLA - sum_{k=0}^{i-1} PT_sk
//
// Upstream processing times are measured from the message timestamps in
// recent traces; we propagate the mean over the analysis window.
#pragma once

#include <cstddef>

#include "common/ids.h"
#include "common/time.h"
#include "trace/warehouse.h"

namespace sora {

struct DeadlineOptions {
  /// Never propagate a threshold below this floor (a service can't do
  /// anything useful with a non-positive deadline).
  SimTime min_threshold = msec(1);
  /// Additionally floor the threshold at this fraction of the SLA. Under
  /// upstream congestion the measured upstream PT can transiently exceed
  /// the whole SLA; propagating a near-zero deadline would declare every
  /// completion "bad" and blind the SCG model exactly when it must act.
  double min_fraction_of_sla = 0.1;
  /// Restrict to traces of this request class (-1 = all).
  int request_class = -1;
  /// Upper bound on traces folded into the mean (0 = fold every trace in
  /// the window). When the window holds more, every k-th matching trace is
  /// folded (deterministic systematic sampling, no RNG) so the per-round
  /// cost stays bounded on planet-scale fleets where critical paths run
  /// hundreds of hops; the propagated mean is statistically unchanged.
  std::size_t max_traces = 0;
};

struct DeadlineResult {
  bool valid = false;
  SimTime rt_threshold = 0;       ///< propagated local deadline for s_i
  SimTime mean_upstream_pt = 0;   ///< mean sum of upstream PTs
  std::size_t traces_used = 0;    ///< traces whose critical path contains s_i
};

/// Compute the propagated deadline for `critical` from traces completed in
/// [from, to], given the end-to-end SLA.
DeadlineResult propagate_deadline(const TraceWarehouse& warehouse, SimTime from,
                                  SimTime to, ServiceId critical, SimTime sla,
                                  const DeadlineOptions& options = {});

}  // namespace sora
