#include "harness/tournament.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <stdexcept>

#include "apps/sock_shop.h"
#include "harness/experiment.h"
#include "harness/sweep.h"
#include "metrics/knob.h"

namespace sora::bench {

const std::vector<std::string>& tournament_controllers() {
  static const std::vector<std::string> kNames = {
      "sora",    "conscale",     "firm", "k8s-hpa",
      "k8s-vpa", "autothrottle", "lsram"};
  return kNames;
}

namespace {

/// Controllers that publish an admitted-concurrency cap through
/// AdmissionController::set_knee — their cells pair with the knee-coupled
/// admission policy; everyone else gets the self-driven gradient limiter.
bool publishes_knee(const std::string& controller) {
  return controller == "sora" || controller == "conscale" ||
         controller == "autothrottle";
}

/// The same scripted obstacle course for every faulted cell: an
/// unannounced CPU-limit squeeze, a replica crash (topology notification),
/// and a control-plane stall, spread over the middle of the run.
FaultPlan scripted_faults(const TournamentCell& cell) {
  FaultPlan plan;
  {
    FaultEvent ev;
    ev.kind = FaultKind::kCpuLimitStep;
    ev.at = cell.duration * 35 / 100;
    ev.service = "cart";
    ev.cores = 1.5;
    plan.add(ev);
  }
  {
    FaultEvent ev;
    ev.kind = FaultKind::kCrashInstance;
    ev.at = cell.duration / 2;
    ev.service = "cart";
    ev.duration = sec(20);
    plan.add(ev);
  }
  {
    FaultEvent ev;
    ev.kind = FaultKind::kControlStall;
    ev.at = cell.duration * 65 / 100;
    ev.duration = sec(30);
    plan.add(ev);
  }
  return plan;
}

}  // namespace

TournamentRow run_tournament_cell(const TournamentCell& cell) {
  sock_shop::Params params;
  params.cart_cores = 2.0;
  params.cart_threads = 5;
  ExperimentConfig ecfg;
  ecfg.duration = cell.duration;
  ecfg.sla = cell.sla;
  ecfg.seed = cell.seed;
  Experiment exp(sock_shop::make_sock_shop(params), ecfg);

  const WorkloadTrace trace(cell.shape, cell.duration, cell.base_users,
                            cell.peak_users);
  auto& users = exp.closed_loop(static_cast<int>(cell.base_users), sec(1),
                                RequestMix(sock_shop::kBrowse));
  users.follow_trace(trace);

  if (cell.admission) {
    AdmissionOptions ao;
    ao.policy = publishes_knee(cell.controller) ? AdmissionPolicy::kKneeCoupled
                                                : AdmissionPolicy::kGradient;
    exp.enable_admission("cart", ao);
  }

  // Every cell gets the same hardware envelope (cart may grow from 2 to 4
  // cores' worth of capacity): FIRM/VPA via the vertical limit, HPA via a
  // second 2-core replica. The soft controllers (Sora/ConScale/
  // Autothrottle/LSRAM) ride on the same FIRM vertical baseline the paper's
  // Section 5.2 comparisons use, so the league isolates what the
  // soft-resource/admission layer adds — not who was handed more cores.
  FirmOptions firm_opts;
  firm_opts.slo_latency = cell.sla;
  firm_opts.min_cores = 2.0;
  firm_opts.max_cores = 4.0;
  auto add_firm_baseline = [&exp, &firm_opts]() -> FirmAutoscaler& {
    auto& firm = exp.add_firm(firm_opts);
    firm.manage(exp.app().service("cart"));
    return firm;
  };

  Controller* ctl = nullptr;
  if (cell.controller == "sora" || cell.controller == "conscale") {
    SoraFrameworkOptions so = cell.controller == "conscale"
                                  ? make_conscale_options()
                                  : SoraFrameworkOptions{};
    so.sla = cell.sla;
    auto& fw = exp.add_sora(so);
    fw.manage(ResourceKnob::entry(exp.app().service("cart")));
    Experiment::link(add_firm_baseline(), fw);
    ctl = &fw;
  } else if (cell.controller == "firm") {
    ctl = &add_firm_baseline();
  } else if (cell.controller == "k8s-hpa") {
    HpaOptions ho;
    ho.max_replicas = 2;  // 2 x 2-core replicas = the shared 4-core envelope
    auto& hpa = exp.add_hpa(ho);
    hpa.manage(exp.app().service("cart"));
    ctl = &hpa;
  } else if (cell.controller == "k8s-vpa") {
    VpaOptions vo;
    vo.min_cores = 2.0;
    vo.max_cores = 4.0;
    auto& vpa = exp.add_vpa(vo);
    vpa.manage(exp.app().service("cart"));
    ctl = &vpa;
  } else if (cell.controller == "autothrottle") {
    AutothrottleOptions ao;
    ao.budget = cell.sla;
    auto& at = exp.add_autothrottle(ao);
    at.manage(exp.app().service("cart"));
    add_firm_baseline();
    ctl = &at;
  } else if (cell.controller == "lsram") {
    LsramOptions lo;
    lo.span_slo = cell.sla;
    auto& ls = exp.add_lsram(lo);
    ls.manage(ResourceKnob::entry(exp.app().service("cart")));
    add_firm_baseline();
    ctl = &ls;
  } else {
    throw std::invalid_argument("unknown tournament controller: " +
                                cell.controller);
  }

  if (cell.faults) exp.enable_faults(scripted_faults(cell));
  exp.enable_slo_analytics();
  exp.run();

  const ExperimentSummary s = exp.summary();
  TournamentRow row;
  row.cell = cell;
  row.goodput_rps = s.goodput_rps;
  row.p99_ms = s.p99_ms;
  row.rounds = ctl->rounds();
  row.actions = ctl->actions().size();
  row.decisions_per_round =
      row.rounds > 0
          ? static_cast<double>(row.actions) / static_cast<double>(row.rounds)
          : 0.0;
  row.slo_episodes = s.slo_episodes;

  // Adaptation lag: for each violation episode, how long until this
  // controller next acted. Episodes the controller never reacted to (e.g.
  // it held for the rest of the run) do not contribute a sample.
  const auto& acts = ctl->actions();
  double lag_sum_us = 0.0;
  int lag_n = 0;
  for (const auto* ep : exp.slo_monitor().episodes_for("e2e")) {
    for (const auto& a : acts) {
      if (a.at >= ep->start) {
        lag_sum_us += static_cast<double>(a.at - ep->start);
        ++lag_n;
        break;
      }
    }
  }
  row.adaptation_lag_ms = lag_n > 0 ? lag_sum_us / lag_n / 1000.0 : 0.0;
  return row;
}

std::vector<TournamentRow> run_tournament(
    const std::vector<TournamentCell>& cells, int threads) {
  return SweepRunner(threads).map(
      cells, [](const TournamentCell& c) { return run_tournament_cell(c); });
}

std::string canonical_row(const TournamentRow& row) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "%s|%s|peak=%.0f|faults=%d|admission=%d|seed=%llu|goodput=%.4f|"
      "p99=%.4f|lag_ms=%.4f|rounds=%llu|actions=%llu|dpr=%.4f|episodes=%zu",
      row.cell.controller.c_str(), to_string(row.cell.shape),
      row.cell.peak_users, row.cell.faults ? 1 : 0, row.cell.admission ? 1 : 0,
      static_cast<unsigned long long>(row.cell.seed), row.goodput_rps,
      row.p99_ms, row.adaptation_lag_ms,
      static_cast<unsigned long long>(row.rounds),
      static_cast<unsigned long long>(row.actions), row.decisions_per_round,
      row.slo_episodes);
  return buf;
}

std::vector<TournamentCell> tournament_grid(
    const std::vector<std::string>& controllers,
    const std::vector<TraceShape>& shapes, SimTime duration,
    std::uint64_t seed) {
  std::vector<TournamentCell> cells;
  for (const auto& name : controllers) {
    for (TraceShape shape : shapes) {
      for (bool faults : {false, true}) {
        for (bool admission : {false, true}) {
          TournamentCell cell;
          cell.controller = name;
          cell.shape = shape;
          cell.duration = duration;
          cell.faults = faults;
          cell.admission = admission;
          cell.seed = seed;
          cells.push_back(cell);
        }
      }
    }
  }
  return cells;
}

std::vector<LeagueEntry> league(const std::vector<TournamentRow>& rows) {
  // Accumulate in first-seen order so equal-goodput ties stay stable.
  std::vector<LeagueEntry> entries;
  auto find = [&entries](const std::string& name) -> LeagueEntry& {
    for (auto& e : entries) {
      if (e.controller == name) return e;
    }
    entries.push_back(LeagueEntry{name});
    return entries.back();
  };
  for (const auto& row : rows) {
    LeagueEntry& e = find(row.cell.controller);
    ++e.cells;
    e.goodput_rps += row.goodput_rps;
    e.p99_ms += row.p99_ms;
    e.adaptation_lag_ms += row.adaptation_lag_ms;
    e.decisions_per_round += row.decisions_per_round;
  }
  for (auto& e : entries) {
    if (e.cells == 0) continue;
    const double n = static_cast<double>(e.cells);
    e.goodput_rps /= n;
    e.p99_ms /= n;
    e.adaptation_lag_ms /= n;
    e.decisions_per_round /= n;
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [](const LeagueEntry& a, const LeagueEntry& b) {
                     return a.goodput_rps > b.goodput_rps;
                   });
  return entries;
}

TextTable rows_table(const std::vector<TournamentRow>& rows) {
  TextTable t({"controller", "trace", "faults", "admission", "goodput (r/s)",
               "p99 (ms)", "adapt lag (ms)", "rounds", "decisions/round"});
  for (const auto& row : rows) {
    t.add_row({row.cell.controller, to_string(row.cell.shape),
               row.cell.faults ? "on" : "off",
               row.cell.admission ? "on" : "off", fmt(row.goodput_rps, 1),
               fmt(row.p99_ms, 1), fmt(row.adaptation_lag_ms, 1),
               fmt_count(row.rounds), fmt(row.decisions_per_round, 2)});
  }
  return t;
}

TextTable league_table(const std::vector<LeagueEntry>& entries) {
  TextTable t({"rank", "controller", "cells", "goodput (r/s)", "p99 (ms)",
               "adapt lag (ms)", "decisions/round"});
  int rank = 0;
  for (const auto& e : entries) {
    t.add_row({fmt_count(++rank), e.controller, fmt_count(e.cells),
               fmt(e.goodput_rps, 1), fmt(e.p99_ms, 1),
               fmt(e.adaptation_lag_ms, 1), fmt(e.decisions_per_round, 2)});
  }
  return t;
}

}  // namespace sora::bench
