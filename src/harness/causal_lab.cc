#include "harness/causal_lab.h"

#include <algorithm>
#include <map>
#include <utility>

#include "common/log.h"
#include "harness/sweep.h"
#include "trace/align.h"

namespace sora {

namespace {

/// Apply one perturbation to a live application (fires at the checkpoint).
void apply_perturbation(const obs::Perturbation& p, Application& app) {
  Service* svc = app.service(p.service);
  if (svc == nullptr) return;
  switch (p.kind) {
    case obs::PerturbationKind::kServiceSpeedup:
      svc->set_demand_scale(svc->demand_scale() * p.factor);
      break;
    case obs::PerturbationKind::kEntryPoolDelta:
      svc->resize_entry_pool(std::max(1, svc->entry_pool_size() + p.delta));
      break;
    case obs::PerturbationKind::kAdmissionCapDelta: {
      AdmissionController* ac = svc->admission();
      if (ac == nullptr) return;
      const AdmissionOptions& o = ac->options();
      ac->set_limit_bounds(std::max(1.0, o.min_limit + p.delta),
                           std::max(1.0, o.max_limit + p.delta),
                           app.sim().now());
      break;
    }
  }
}

/// Latest learned knee for `service` across the experiment's frameworks
/// (0 when no framework has one).
double knee_for(Experiment& exp, const std::string& service) {
  double knee = 0.0;
  SimTime latest = -1;
  for (const auto& fw : exp.frameworks()) {
    for (const auto& k : fw->current_knees()) {
      if (k.service == service && k.at > latest) {
        latest = k.at;
        knee = k.knee_concurrency;
      }
    }
  }
  return knee;
}

/// The Pearson localizer's verdict over the measurement window: the modal
/// critical_service across the control rounds that landed in [from, to]
/// (the end-of-run report alone can straddle a load phase the causal window
/// never saw). Ties break toward the verdict seen latest, then by name.
/// Falls back to the first framework's final report when no round landed in
/// the window.
std::string pearson_pick_of(Experiment& exp, SimTime from, SimTime to) {
  std::map<std::string, std::size_t> votes;
  std::map<std::string, SimTime> latest;
  for (const obs::ControlDecisionRecord& rec : exp.decision_log().records()) {
    if (rec.at < from || rec.at > to || rec.critical_service.empty()) continue;
    if (rec.controller == "causal" || rec.controller == "fault") continue;
    ++votes[rec.critical_service];
    SimTime& seen = latest[rec.critical_service];
    seen = std::max(seen, rec.at);
  }
  std::string pick;
  std::size_t best_votes = 0;
  SimTime best_latest = -1;
  for (const auto& [name, n] : votes) {
    const SimTime seen = latest[name];
    if (n > best_votes || (n == best_votes && seen > best_latest)) {
      pick = name;
      best_votes = n;
      best_latest = seen;
    }
  }
  if (!pick.empty()) return pick;
  if (exp.frameworks().empty()) return "";
  const CriticalServiceReport& report = exp.frameworks().front()->last_report();
  if (!report.critical.valid()) return "";
  return exp.app().service_name(report.critical);
}

}  // namespace

CausalLab::CausalLab(Builder builder, CausalLabOptions options)
    : builder_(std::move(builder)), options_(std::move(options)) {}

std::unique_ptr<Experiment> CausalLab::build_one(bool with_digest) const {
  std::unique_ptr<Experiment> exp = builder_();
  if (with_digest) exp->sim().set_digest_enabled(true);
  return exp;
}

std::vector<obs::Perturbation> CausalLab::plan_perturbations(
    Application& app) const {
  std::vector<std::string> names = options_.services;
  if (names.empty()) {
    for (const auto& svc : app.services()) names.push_back(svc->name());
  }
  std::vector<obs::Perturbation> plan;
  for (const std::string& name : names) {
    Service* svc = app.service(name);
    if (svc == nullptr) {
      SORA_WARN << "causal: unknown service '" << name << "' skipped";
      continue;
    }
    for (double factor : options_.speedup_factors) {
      obs::Perturbation p = obs::Perturbation::speedup(name, factor);
      p.service_id = svc->id();
      plan.push_back(std::move(p));
    }
    if (options_.pool_delta != 0) {
      for (int delta : {options_.pool_delta, -options_.pool_delta}) {
        obs::Perturbation p = obs::Perturbation::pool_delta(name, delta);
        p.service_id = svc->id();
        plan.push_back(std::move(p));
      }
    }
    if (options_.cap_delta != 0 && svc->admission() != nullptr) {
      for (int delta : {options_.cap_delta, -options_.cap_delta}) {
        obs::Perturbation p = obs::Perturbation::cap_delta(name, delta);
        p.service_id = svc->id();
        plan.push_back(std::move(p));
      }
    }
  }
  return plan;
}

CausalLab::WindowOutcome CausalLab::window_outcome(Experiment& exp) const {
  WindowOutcome out;
  const SimTime from = options_.checkpoint;
  const SimTime to = options_.checkpoint + window_;
  const SimTime sla = exp.config().sla;
  std::vector<SimTime> rts;
  std::uint64_t good = 0;
  exp.warehouse().for_each_in_window(0, kSimTimeNever, [&](const Trace& t) {
    if (t.start < from || t.start > to) return;
    if (t.root().failed || t.rejected()) return;
    rts.push_back(t.response_time());
    if (t.response_time() <= sla) ++good;
  });
  out.traces = rts.size();
  if (!rts.empty()) {
    std::sort(rts.begin(), rts.end());
    // Exact (deterministic) p99: nearest-rank on the sorted sample.
    const std::size_t idx =
        (rts.size() * 99 + 99) / 100 == 0 ? 0 : (rts.size() * 99 + 99) / 100 - 1;
    out.p99_ms = to_msec(rts[std::min(idx, rts.size() - 1)]);
  }
  if (window_ > 0) out.goodput = static_cast<double>(good) / to_sec(window_);
  return out;
}

obs::CausalEffect CausalLab::evaluate(const obs::Perturbation& p) const {
  std::unique_ptr<Experiment> exp = build_one(/*with_digest=*/false);
  Application* app = &exp->app();
  const obs::Perturbation pert = p;
  exp->sim().schedule_at(options_.checkpoint,
                         [pert, app] { apply_perturbation(pert, *app); });
  exp->run();

  obs::CausalEffect effect;
  effect.perturbation = p;
  effect.checkpoint = options_.checkpoint;
  effect.base_p99_ms = base_outcome_.p99_ms;
  effect.base_goodput = base_outcome_.goodput;
  const WindowOutcome cf = window_outcome(*exp);
  effect.cf_p99_ms = cf.p99_ms;
  effect.cf_goodput = cf.goodput;
  effect.base_knee = knee_for(*baseline_, p.service);
  effect.cf_knee = knee_for(*exp, p.service);

  effect.diff =
      diff_warehouses(baseline_->warehouse(), exp->warehouse(),
                      options_.checkpoint, options_.checkpoint + window_);
  effect.edges.reserve(effect.diff.edges.size());
  for (const EdgeLatencyDelta& e : effect.diff.edges) {
    obs::EdgeAttribution attr;
    attr.parent = e.parent.valid() ? app->service_name(e.parent) : "client";
    attr.service = app->service_name(e.service);
    attr.aligned = e.aligned;
    attr.mean_delta_ms = e.mean_delta_ms();
    attr.total_delta_ms = e.total_delta_ms();
    effect.edges.push_back(std::move(attr));
  }
  return effect;
}

obs::CausalProfile CausalLab::run() {
  obs::CausalProfile profile;
  profile.scenario = options_.scenario;
  profile.checkpoint = options_.checkpoint;

  // Primary baseline: full run with event + trace digests on.
  baseline_ = build_one(/*with_digest=*/true);
  window_ = options_.window > 0
                ? options_.window
                : baseline_->config().duration - options_.checkpoint;
  profile.window = window_;
  baseline_->run();
  profile.primary_sim_digest = baseline_->sim().digest();
  profile.primary_trace_digest = baseline_->warehouse().digest();
  base_outcome_ = window_outcome(*baseline_);

  // Control re-run: the per-round determinism proof. Any divergence here
  // invalidates the counterfactual comparison, so it is loud.
  if (options_.run_control) {
    std::unique_ptr<Experiment> control = build_one(/*with_digest=*/true);
    control->run();
    profile.control_sim_digest = control->sim().digest();
    profile.control_trace_digest = control->warehouse().digest();
    profile.control_identical =
        profile.control_sim_digest == profile.primary_sim_digest &&
        profile.control_trace_digest == profile.primary_trace_digest;
    if (!profile.control_identical) {
      SORA_WARN << "causal: control re-run diverged from primary "
                << "(sim " << profile.primary_sim_digest << " vs "
                << profile.control_sim_digest << ", traces "
                << profile.primary_trace_digest << " vs "
                << profile.control_trace_digest
                << "); profile deltas are not trustworthy";
    }
  }

  // Counterfactual fan. SweepRunner returns index-ordered results, so the
  // profile is bit-identical no matter the worker count.
  const std::vector<obs::Perturbation> plan =
      plan_perturbations(baseline_->app());
  SweepRunner runner(options_.threads);
  profile.effects = runner.map(
      plan, [this](const obs::Perturbation& p) { return evaluate(p); });
  profile.sort_effects();

  profile.pearson_pick = pearson_pick_of(*baseline_, options_.checkpoint,
                                         options_.checkpoint + window_);
  const std::vector<std::string> ranking = profile.causal_service_ranking();
  profile.causal_pick = ranking.empty() ? "" : ranking.front();
  profile.agree = !profile.causal_pick.empty() &&
                  profile.causal_pick == profile.pearson_pick;

  append_decision_records(profile);
  publish(*baseline_, {profile});
  return profile;
}

void CausalLab::append_decision_records(const obs::CausalProfile& profile) {
  const SimTime verdict_at = options_.checkpoint + window_;
  std::uint64_t round = 0;
  for (const obs::CausalEffect& e : profile.effects) {
    obs::ControlDecisionRecord rec;
    rec.at = verdict_at;
    rec.controller = "causal";
    rec.round = round++;
    rec.target = e.perturbation.service;
    rec.action = "causal_effect";
    rec.causal_perturbation = e.perturbation.label();
    rec.causal_delta_p99_ms = e.delta_p99_ms();
    rec.causal_rank = profile.ranking_string();
    rec.traces_analyzed = e.diff.traces_aligned;
    rec.reason = "counterfactual " + e.perturbation.label();
    baseline_->decision_log().append(std::move(rec));
  }

  obs::ControlDecisionRecord rank;
  rank.at = verdict_at;
  rank.controller = "causal";
  rank.round = round;
  rank.target = profile.causal_pick;
  rank.critical_service = profile.pearson_pick;
  rank.action = "causal_rank";
  rank.causal_rank = profile.ranking_string();
  if (!profile.effects.empty()) {
    rank.causal_perturbation = profile.effects.front().perturbation.label();
    rank.causal_delta_p99_ms = profile.effects.front().delta_p99_ms();
  }
  rank.reason = profile.agree
                    ? "causal pick matches pearson localizer"
                    : "causal pick diverges from pearson localizer";
  baseline_->decision_log().append(std::move(rank));
}

std::string CausalLab::profiles_json(
    const std::vector<obs::CausalProfile>& profiles) {
  std::string json = "{\"profiles\":[";
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    if (i > 0) json += ',';
    json += profiles[i].to_json();
  }
  json += "]}";
  return json;
}

void CausalLab::publish(Experiment& exp,
                        const std::vector<obs::CausalProfile>& profiles) {
  if (exp.ctl_plane() != nullptr) {
    exp.ctl_plane()->publish_causal(profiles_json(profiles));
  }
}

}  // namespace sora
