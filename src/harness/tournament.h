// Controller tournament: every control plane on the same obstacle course.
//
// A tournament cell is one Experiment run: a named controller, a workload
// trace shape, a peak-load multiplier, and two toggles — deterministic
// faults on/off and admission control on/off. Every cell runs the same
// Sock Shop cart topology the Section 5.2 benches use under the same
// maximum hardware envelope (the cart may grow from 2 to 4 cores' worth of
// capacity, vertically or horizontally), and the soft controllers ride on
// the same FIRM vertical baseline as the paper's comparisons — so the
// league isolates the control policy, not the resource budget.
//
// Per-cell metrics:
//   goodput/p99       — client view from the experiment summary
//   adaptation lag    — mean time from an SLO-violation episode opening to
//                       the controller's first subsequent action
//   decisions/round   — emitted ControlActions per control round
//
// Determinism: a cell is a pure function of its fields. run_tournament fans
// cells over SweepRunner and returns rows in cell order, so serial and
// parallel sweeps emit byte-identical tables (tests/test_tournament.cc pins
// this). canonical_row() is the fixed-format comparison string.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/table.h"
#include "workload/traces.h"

namespace sora::bench {

/// Controller names accepted by run_tournament_cell, in league order.
const std::vector<std::string>& tournament_controllers();

struct TournamentCell {
  std::string controller;  ///< one of tournament_controllers()
  TraceShape shape = TraceShape::kSteepTriPhase;
  SimTime duration = minutes(3);
  SimTime sla = msec(400);
  double base_users = 600;
  /// Peak of the closed-loop population trace. The default drives the
  /// 2-core/5-thread cart at roughly twice its knee capacity, the paper's
  /// overload operating point.
  double peak_users = 2400;
  bool faults = false;     ///< scripted CPU-limit step + crash + stall
  bool admission = false;  ///< cart admission (knee-coupled when published)
  std::uint64_t seed = 42;
};

struct TournamentRow {
  TournamentCell cell;
  double goodput_rps = 0.0;
  double p99_ms = 0.0;
  /// Mean ms from episode start to the controller's first action at or
  /// after it (0 when no episode was followed by an action).
  double adaptation_lag_ms = 0.0;
  std::uint64_t rounds = 0;
  std::uint64_t actions = 0;
  double decisions_per_round = 0.0;
  std::size_t slo_episodes = 0;
};

/// Run one cell to completion. Pure function of the cell (fresh Experiment,
/// seeded from cell.seed); safe to invoke concurrently.
TournamentRow run_tournament_cell(const TournamentCell& cell);

/// Fan the cells over a SweepRunner (threads <= 0 = default worker count,
/// honoring SORA_SWEEP_THREADS) and return rows in cell order.
std::vector<TournamentRow> run_tournament(
    const std::vector<TournamentCell>& cells, int threads = 0);

/// Fixed-format one-line rendering of a row; byte-equality of these strings
/// is the tournament's determinism contract.
std::string canonical_row(const TournamentRow& row);

/// Build the full cross-product grid.
std::vector<TournamentCell> tournament_grid(
    const std::vector<std::string>& controllers,
    const std::vector<TraceShape>& shapes, SimTime duration,
    std::uint64_t seed);

/// One league-table line: a controller's metrics averaged across its cells.
struct LeagueEntry {
  std::string controller;
  std::size_t cells = 0;
  double goodput_rps = 0.0;  ///< mean across cells
  double p99_ms = 0.0;
  double adaptation_lag_ms = 0.0;
  double decisions_per_round = 0.0;
};

/// Aggregate rows per controller (mean over cells), sorted by descending
/// goodput — the league order.
std::vector<LeagueEntry> league(const std::vector<TournamentRow>& rows);

/// Render rows / league entries as aligned tables.
TextTable rows_table(const std::vector<TournamentRow>& rows);
TextTable league_table(const std::vector<LeagueEntry>& entries);

}  // namespace sora::bench
