// Parallel experiment sweep runner.
//
// Every figure/table bench is a sweep of independent Experiment runs
// (different knob settings and/or seeds). Each run owns its Simulator,
// Tracer and Application, so runs share no mutable state and can execute
// on worker threads; the process-wide pieces they do touch (the SORA_LOG
// clock, the log sink, the overhead profiler) are thread-safe or
// thread-local. SweepRunner fans runs out across a thread pool and returns
// results **in index order**, so a parallel sweep emits byte-identical
// tables to a serial one — determinism comes from per-run seeds, not from
// scheduling.
//
// Worker count: explicit constructor argument, else SORA_SWEEP_THREADS,
// else std::thread::hardware_concurrency().
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

namespace sora {

class SweepRunner {
 public:
  /// `threads` <= 0 selects default_worker_count().
  explicit SweepRunner(int threads = 0);

  /// SORA_SWEEP_THREADS when set (clamped to >= 1), else hardware
  /// concurrency, else 1.
  static int default_worker_count();

  int threads() const { return threads_; }

  /// Run fn(0) ... fn(n-1) across the pool and return the results ordered
  /// by index. `fn` must be safe to invoke concurrently from different
  /// threads (each call should build its own Experiment). The first
  /// exception thrown by any call is rethrown here after all workers stop.
  template <typename Fn>
  auto map(std::size_t n, Fn&& fn)
      -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
    using R = std::invoke_result_t<Fn&, std::size_t>;
    std::vector<std::optional<R>> slots(n);
    run_indexed(n, [&fn, &slots](std::size_t i) { slots[i].emplace(fn(i)); });
    std::vector<R> out;
    out.reserve(n);
    for (auto& slot : slots) out.push_back(std::move(*slot));
    return out;
  }

  /// Convenience overload: one call per item, results in item order.
  template <typename Item, typename Fn>
  auto map(const std::vector<Item>& items, Fn&& fn)
      -> std::vector<std::invoke_result_t<Fn&, const Item&>> {
    return map(items.size(),
               [&](std::size_t i) { return fn(items[i]); });
  }

 private:
  /// Dispatch body(i) for i in [0, n) over the worker pool; blocks until
  /// all indices completed (or an exception aborted the remainder).
  void run_indexed(std::size_t n,
                   const std::function<void(std::size_t)>& body);

  int threads_;
};

}  // namespace sora
