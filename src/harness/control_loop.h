// Harness-side control loop: one registry drives every controller.
//
// Sora/ConScale, the hardware autoscalers and the bi-level/gradient
// baselines all implement the Controller contract (autoscale/controller.h);
// the loop is the single place the harness starts, stops, steps and
// enumerates them. Fault injection and the ctl plane take the same list, so
// a controller registered here automatically participates in stalls and
// topology notifications — there is no second wiring path to forget.
//
// Registration order is start order; the Experiment registers soft-resource
// frameworks before hardware scalers to preserve the historical same-
// timestamp event ordering between paired control planes.
#pragma once

#include <vector>

#include "autoscale/controller.h"

namespace sora {

class ControlLoop {
 public:
  /// Register a controller (deduplicated; registration order = start order).
  void add(Controller* controller);
  void clear() { controllers_.clear(); }

  const std::vector<Controller*>& controllers() const { return controllers_; }

  /// Start every registered controller (idempotent per controller).
  void start_all();
  void stop_all();

  /// Run one control round on every controller, in registration order, and
  /// return all actions emitted (tests and offline tools; the scheduled
  /// periodics do exactly this per controller).
  std::vector<ControlAction> step_all();

 private:
  std::vector<Controller*> controllers_;
};

}  // namespace sora
