// CausalLab: COZ-style causal what-if profiling by counterfactual
// co-simulation.
//
// Virtual-speedup profilers answer "which component, if made faster, would
// actually move the end-to-end metric?" — a causal question correlation
// cannot answer. On real hardware COZ approximates the counterfactual by
// slowing everything else down; a deterministic simulator can do better and
// *run* the counterfactual: re-execute the experiment from the same seeds
// with exactly one perturbation applied from a checkpoint onward. The two
// runs share every RNG draw, so they are bit-identical up to the checkpoint
// and carry identical TraceIds throughout — the measured deltas (Δp99,
// Δgoodput, Δknee) and the per-call-graph-edge latency attribution from
// differential span alignment are exact causal effects, not estimates.
//
// Mechanics: each counterfactual is a fresh Experiment built by the caller's
// builder with one extra event scheduled before start, firing at the
// checkpoint to apply the perturbation (service-time scale via
// set_demand_scale, which refreshes the samplers without changing the draw
// count; entry-pool resize; admission-cap bound shift). Scheduling one extra
// event shifts later event sequence numbers uniformly and so preserves FIFO
// order among all other events — determinism is argued structurally and
// *proved* per round by a control re-run (no perturbation) that must match
// the primary run's simulator event digest and trace-warehouse digest
// exactly. Counterfactuals fan out over SweepRunner; results are
// index-ordered, so a 4-thread profile is bit-identical to a serial one.
//
// The profiler is the observability half of a future digital-twin planner:
// the fork/evaluate primitive built here is what a planner would search
// over before committing a knob change to the live system.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "obs/causal/profile.h"

namespace sora {

struct CausalLabOptions {
  /// Sim time at which perturbations activate (counterfactual fork point).
  SimTime checkpoint = 0;
  /// Measurement window after the checkpoint; 0 = to the end of the run.
  SimTime window = 0;
  /// Virtual speedups evaluated per service (demand scale; < 1 = faster).
  std::vector<double> speedup_factors = {0.75, 0.9};
  /// Entry-pool what-if: evaluates +delta and -delta threads per replica
  /// (0 disables pool what-ifs).
  int pool_delta = 2;
  /// Admission-cap what-if: shifts the controller's limit bounds by
  /// +delta/-delta on services that have one (0 disables).
  int cap_delta = 4;
  /// Services to profile (names); empty = every service in the app.
  std::vector<std::string> services;
  /// SweepRunner worker threads for the counterfactual fan (0 = default).
  int threads = 0;
  /// Re-run the unperturbed baseline and require bit-identical digests
  /// (the per-round determinism proof). Costs one extra run.
  bool run_control = true;
  /// Regime label stamped into the profile ("calibrated", "overload", ...).
  std::string scenario = "default";
};

class CausalLab {
 public:
  /// Builds one complete, un-started Experiment (workload + control planes
  /// configured, same seed every call). Invoked once for the primary
  /// baseline, once for the control re-run, and once per counterfactual —
  /// concurrently from SweepRunner workers, so it must be safe to call from
  /// multiple threads (each call only touches its own Experiment).
  using Builder = std::function<std::unique_ptr<Experiment>()>;

  CausalLab(Builder builder, CausalLabOptions options);

  /// Execute the full profiling round: primary baseline, control re-run,
  /// counterfactual fan, attribution, ranking, cross-validation. Appends
  /// controller="causal" records to the baseline's decision log and, when
  /// the baseline has a ctl plane, publishes the profile to /causalz.
  obs::CausalProfile run();

  /// The primary baseline experiment. Valid after run(); kept alive so its
  /// ctl server (if any) keeps serving the published profile.
  Experiment& baseline() { return *baseline_; }
  bool has_baseline() const { return baseline_ != nullptr; }

  /// Render a profile collection as the /causalz JSON document.
  static std::string profiles_json(
      const std::vector<obs::CausalProfile>& profiles);
  /// Publish profiles to an experiment's ctl plane (no-op without one).
  static void publish(Experiment& exp,
                      const std::vector<obs::CausalProfile>& profiles);

 private:
  struct WindowOutcome {
    double p99_ms = 0.0;
    double goodput = 0.0;  ///< in-SLA served traces per second
    std::size_t traces = 0;
  };

  std::unique_ptr<Experiment> build_one(bool with_digest) const;
  std::vector<obs::Perturbation> plan_perturbations(Application& app) const;
  obs::CausalEffect evaluate(const obs::Perturbation& p) const;
  WindowOutcome window_outcome(Experiment& exp) const;
  void append_decision_records(const obs::CausalProfile& profile);

  Builder builder_;
  CausalLabOptions options_;
  SimTime window_ = 0;  ///< resolved measurement window
  WindowOutcome base_outcome_;
  std::unique_ptr<Experiment> baseline_;
};

}  // namespace sora
