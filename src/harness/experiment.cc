#include "harness/experiment.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <set>
#include <stdexcept>

#include "common/log.h"
#include "sim/partition.h"

namespace sora {

namespace {
/// SORA_SEED environment override: returns `configured` unless the variable
/// is set to a parseable unsigned integer.
std::uint64_t resolve_seed(std::uint64_t configured) {
  const char* env = std::getenv("SORA_SEED");
  if (env == nullptr || *env == '\0') return configured;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(env, &end, 10);
  if (end == env || *end != '\0') {
    SORA_WARN << "experiment: ignoring unparseable SORA_SEED=\"" << env << '"';
    return configured;
  }
  SORA_INFO << "experiment: seed " << parsed << " (SORA_SEED override of "
            << configured << ")";
  return static_cast<std::uint64_t>(parsed);
}

/// Generic non-negative integer env override (SORA_SIM_SHARDS and friends).
long long resolve_env_int(const char* name, long long configured) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return configured;
  char* end = nullptr;
  const long long parsed = std::strtoll(env, &end, 10);
  if (end == env || *end != '\0' || parsed < 0) {
    SORA_WARN << "experiment: ignoring unparseable " << name << "=\"" << env
              << '"';
    return configured;
  }
  SORA_INFO << "experiment: " << name << "=" << parsed << " (env override of "
            << configured << ")";
  return parsed;
}
}  // namespace

Experiment::Experiment(ApplicationConfig app_config, ExperimentConfig config)
    : config_(config), warehouse_(config.warehouse_capacity) {
  config_.seed = resolve_seed(config_.seed);
  config_.shards =
      static_cast<int>(resolve_env_int("SORA_SIM_SHARDS", config_.shards));
  config_.shard_threads = std::max(
      1, static_cast<int>(
             resolve_env_int("SORA_SIM_THREADS", config_.shard_threads)));
  // SORA_NET_LATENCY_US gives zero-latency topologies a cross-service wire
  // delay without a rebuild — sharding needs one for its lookahead.
  app_config.network_latency = static_cast<SimTime>(resolve_env_int(
      "SORA_NET_LATENCY_US",
      static_cast<long long>(app_config.network_latency)));
  warehouse_.attach(tracer_);
  // Deadline-aware admission needs requests to carry the end-to-end SLA;
  // stamp it as the default deadline unless the topology set its own.
  if (app_config.request_sla == 0) app_config.request_sla = config_.sla;
  app_ = std::make_unique<Application>(sim_, tracer_, std::move(app_config),
                                       config_.seed);
  // Traces that outlive their root (async callback edges) assemble on the
  // lane of whichever service closed last; ride the network back to the
  // entry lane before running the trace listeners. Listener state
  // (warehouse, localizer, SLO monitor) stays confined to shard 0, and the
  // hand-off costs exactly one network latency through the same
  // merge-keyed mailbox path as response hops — so serial and sharded runs
  // at any shard count see identical delivery times and stay
  // byte-identical.
  tracer_.set_deferred_delivery([this](Trace&& t, ServiceId last) {
    Service* sender = app_->service(last);
    if (sender == nullptr) {
      tracer_.deliver_trace(std::move(t));
      return;
    }
    app_->deliver(*sender, /*dst_shard=*/0,
                  [this, done = std::move(t)]() mutable {
                    tracer_.deliver_trace(std::move(done));
                  });
  });
  recorder_ = std::make_unique<LatencyRecorder>(sim_, config_.sla,
                                                config_.timeline_bucket);
  profile_baseline_ = obs::OverheadProfiler::global().stats();
}

Experiment::~Experiment() = default;

OpenLoopGenerator& Experiment::open_loop(const WorkloadTrace& trace,
                                         RequestMix mix) {
  auto gen = std::make_unique<OpenLoopGenerator>(
      sim_, *app_, trace,
      config_.seed ^ (0x9d5ab1c2e3f40517ULL + open_loops_.size()));
  gen->set_mix(std::move(mix));
  gen->set_observer([this](SimTime, int, SimTime rt, bool ok) {
    recorder_->record(rt, ok);
    if (!ok && slo_monitor_ != nullptr) {
      slo_monitor_->record("e2e", sim_.now(), false);
    }
  });
  open_loops_.push_back(std::move(gen));
  return *open_loops_.back();
}

ClosedLoopGenerator& Experiment::closed_loop(int users, SimTime think_mean,
                                             RequestMix mix) {
  auto gen = std::make_unique<ClosedLoopGenerator>(
      sim_, *app_, users, think_mean,
      config_.seed ^ (0x5bd1e995a7c4f832ULL + closed_loops_.size()));
  gen->set_mix(std::move(mix));
  gen->set_observer([this](SimTime, int, SimTime rt, bool ok) {
    recorder_->record(rt, ok);
    if (!ok && slo_monitor_ != nullptr) {
      slo_monitor_->record("e2e", sim_.now(), false);
    }
  });
  closed_loops_.push_back(std::move(gen));
  return *closed_loops_.back();
}

WorkloadSource& Experiment::set_workload_source(
    std::unique_ptr<WorkloadSource> source) {
  source->bind(sim_, *app_,
               config_.seed ^ (0xa0761d6478bd642fULL + workload_sources_.size()),
               [this](SimTime, int, SimTime rt, bool ok) {
                 recorder_->record(rt, ok);
                 if (!ok && slo_monitor_ != nullptr) {
                   slo_monitor_->record("e2e", sim_.now(), false);
                 }
               });
  workload_sources_.push_back(std::move(source));
  return *workload_sources_.back();
}

SoraFramework& Experiment::add_sora(SoraFrameworkOptions options) {
  frameworks_.push_back(
      std::make_unique<SoraFramework>(*app_, warehouse_, options));
  frameworks_.back()->set_decision_log(&decision_log_);
  return *frameworks_.back();
}

HorizontalPodAutoscaler& Experiment::add_hpa(HpaOptions options) {
  auto hpa = std::make_unique<HorizontalPodAutoscaler>(sim_, *app_, options);
  auto* ptr = hpa.get();
  ptr->set_decision_log(&decision_log_);
  ptr->set_metrics(&app_->metrics());
  scalers_.push_back(std::move(hpa));
  return *ptr;
}

VerticalPodAutoscaler& Experiment::add_vpa(VpaOptions options) {
  auto vpa = std::make_unique<VerticalPodAutoscaler>(sim_, *app_, options);
  auto* ptr = vpa.get();
  ptr->set_decision_log(&decision_log_);
  ptr->set_metrics(&app_->metrics());
  scalers_.push_back(std::move(vpa));
  return *ptr;
}

FirmAutoscaler& Experiment::add_firm(FirmOptions options) {
  auto firm =
      std::make_unique<FirmAutoscaler>(sim_, *app_, warehouse_, options);
  auto* ptr = firm.get();
  ptr->set_decision_log(&decision_log_);
  ptr->set_metrics(&app_->metrics());
  scalers_.push_back(std::move(firm));
  return *ptr;
}

AutothrottleController& Experiment::add_autothrottle(
    AutothrottleOptions options) {
  auto at = std::make_unique<AutothrottleController>(*app_, warehouse_, options);
  auto* ptr = at.get();
  ptr->set_decision_log(&decision_log_);
  controllers_.push_back(std::move(at));
  return *ptr;
}

LsramController& Experiment::add_lsram(LsramOptions options) {
  auto ls = std::make_unique<LsramController>(*app_, warehouse_, options);
  auto* ptr = ls.get();
  ptr->set_decision_log(&decision_log_);
  controllers_.push_back(std::move(ls));
  return *ptr;
}

void Experiment::link(Autoscaler& scaler, SoraFramework& framework) {
  scaler.add_scale_listener([&framework](const ScaleEvent& ev) {
    framework.on_hardware_scaled(ev.service, ev.old_cores, ev.new_cores,
                                 ev.old_replicas, ev.new_replicas);
  });
}

void Experiment::track_service(const std::string& name,
                               std::string edge_target) {
  Service* svc = app_->service(name);
  if (svc == nullptr) {
    throw std::invalid_argument("track_service: unknown service " + name);
  }
  Tracked t;
  t.name = name;
  t.service = svc;
  t.edge_target = std::move(edge_target);
  t.busy_snapshot = svc->cpu_busy_integral();
  t.entry_snapshot = svc->entry_usage_integral();
  t.edge_snapshot =
      t.edge_target.empty() ? 0.0 : svc->edge_usage_integral(t.edge_target);
  t.last = sim_.now();
  tracked_.push_back(std::move(t));
}

const std::vector<ServiceTimelinePoint>& Experiment::timeline(
    const std::string& name) const {
  for (const Tracked& t : tracked_) {
    if (t.name == name) return t.points;
  }
  throw std::invalid_argument("timeline: service not tracked: " + name);
}

void Experiment::sample_tracked() {
  const SimTime now = sim_.now();
  for (Tracked& t : tracked_) {
    const SimTime dt = now - t.last;
    if (dt <= 0) continue;
    Service& svc = *t.service;

    ServiceTimelinePoint p;
    p.at = now;
    const double busy = svc.cpu_busy_integral();
    const int replicas = std::max(1, svc.active_replicas());
    // Pod-level view: utilization % of one core, averaged across replicas.
    p.util_pct = (busy - t.busy_snapshot) / static_cast<double>(dt) * 100.0 /
                 replicas;
    p.limit_pct = svc.cpu_limit() * 100.0;
    p.replicas = svc.active_replicas();
    p.entry_capacity = svc.entry_capacity();
    const double entry = svc.entry_usage_integral();
    p.entry_in_use = (entry - t.entry_snapshot) / static_cast<double>(dt);
    if (!t.edge_target.empty()) {
      p.edge_capacity = svc.edge_capacity(t.edge_target);
      const double edge = svc.edge_usage_integral(t.edge_target);
      p.edge_in_use = (edge - t.edge_snapshot) / static_cast<double>(dt);
      t.edge_snapshot = edge;
    }
    t.busy_snapshot = busy;
    t.entry_snapshot = entry;
    t.last = now;
    t.points.push_back(p);
  }
}

void Experiment::enable_metrics_sampling(SimTime period) {
  metrics_period_ = period;
}

void Experiment::enable_slo_analytics(SloAnalyticsOptions options) {
  if (slo_monitor_ != nullptr) return;
  slo_options_ = options;
  slo_monitor_ = std::make_unique<obs::SloMonitor>(options.monitor);
  slo_monitor_->set_decision_log(&decision_log_);
  attributor_ = std::make_unique<obs::BudgetAttributor>(
      config_.sla, options.attribution_window,
      [this](ServiceId id) { return app_->service_name(id); });

  // Stamp deadline/slack annotations before the warehouse (or any other
  // listener) sees the trace, so stored spans carry their budget.
  tracer_.set_trace_finalizer(
      [this](Trace& t) { obs::annotate_budget(t, config_.sla); });

  tracer_.add_trace_listener([this](const Trace& t) {
    // Traces with a shed hop never produced an end-user response; the
    // generator observer already recorded the rejection against the e2e
    // SLO, and budget attribution over a rejected trace is meaningless.
    if (t.rejected()) return;
    const obs::TraceBudget budget = obs::attribute_budget(t, config_.sla);
    attributor_->on_budget(budget, t.end);
    slo_monitor_->record("e2e", t.end, budget.met_sla);
    if (slo_options_.per_service) {
      // A hop is good when it stayed within its propagated budget — this is
      // the per-service SLO signal (a leaf can be "bad" even on requests
      // that squeaked in under the end-to-end SLA, and vice versa).
      for (const obs::HopBudget& hop : budget.hops) {
        slo_monitor_->record(app_->service_name(hop.service), t.end,
                             hop.slack >= 0);
      }
    }
  });
}

void Experiment::enable_faults(FaultPlan plan) {
  fault_plan_ = std::move(plan);
}

void Experiment::enable_ctl(ctl::CtlOptions options) {
  ctl_options_ = options;
}

AdmissionController& Experiment::enable_admission(const std::string& service,
                                                  AdmissionOptions options) {
  Service* svc = app_->service(service);
  if (svc == nullptr) {
    throw std::invalid_argument("enable_admission: unknown service " + service);
  }
  auto controller = std::make_unique<AdmissionController>(service, options);
  controller->set_decision_log(&decision_log_);
  controller->set_metrics(&app_->metrics());
  AdmissionController* ptr = controller.get();
  svc->set_admission(std::move(controller));
  return *ptr;
}

void Experiment::configure_sharding() {
  if (config_.shards <= 0 || sim_.sharding()) return;
  const ApplicationConfig& app_cfg = app_->config();

  // Build the partition graph from the topology declaration. Node index ==
  // config index == ServiceId value (the application compiles services in
  // declaration order); weight = replica count as the load estimate.
  std::set<std::string> entry_names;
  for (const auto& [cls, name] : app_cfg.entry_service) {
    entry_names.insert(name);
  }
  std::vector<sim::PartitionNode> nodes;
  nodes.reserve(app_cfg.services.size());
  std::vector<sim::PartitionEdge> edges;
  std::map<std::string, int> index_of;
  for (const ServiceConfig& svc : app_cfg.services) {
    sim::PartitionNode n;
    n.name = svc.name;
    n.weight = static_cast<double>(std::max(1, svc.initial_replicas));
    n.entry = entry_names.count(svc.name) > 0;
    index_of[svc.name] = static_cast<int>(nodes.size());
    nodes.push_back(std::move(n));
  }
  for (const ServiceConfig& svc : app_cfg.services) {
    std::set<std::string> targets;
    for (const auto& [cls, behavior] : svc.classes) {
      for (const CallGroup& group : behavior.call_groups) {
        for (const std::string& t : group.targets) targets.insert(t);
      }
      // Async callback edges carry real messages too: they ride the same
      // deliver() path at the same network latency, so including them here
      // keeps the partitioner's lookahead (= min cross-shard edge latency)
      // a true lower bound on every cross-lane message.
      for (const AsyncCallback& cb : behavior.async_callbacks) {
        targets.insert(cb.target);
      }
    }
    for (const std::string& t : targets) {
      auto it = index_of.find(t);
      if (it == index_of.end()) continue;  // Application validates these
      edges.push_back(sim::PartitionEdge{index_of[svc.name], it->second,
                                         app_cfg.network_latency});
    }
  }

  const sim::PartitionResult part =
      sim::partition_service_graph(nodes, edges, config_.shards);
  if (!part.ok) {
    SORA_WARN << "experiment: sharding disabled, serial engine kept: "
              << part.reason;
    return;
  }
  // No cross-shard edges (single service, or everything landed on one
  // shard): any positive lookahead is safe since nothing ever crosses.
  const SimTime lookahead =
      part.lookahead == sim::PartitionResult::kNoCrossEdges
          ? std::max<SimTime>(app_cfg.network_latency, 1)
          : part.lookahead;

  sim_.configure_shards(part.shards, lookahead, config_.shard_threads);
  for (const auto& svc : app_->services()) {
    const auto idx = static_cast<std::size_t>(svc->id().value());
    svc->set_shard(idx < part.assignment.size() ? part.assignment[idx] : 0);
  }
  // Completed traces must come out in canonical (interleaving-independent)
  // form; the open-trace table needs the mutex only when lanes really run
  // concurrently.
  tracer_.set_canonical_ids(true);
  tracer_.set_thread_safe(config_.shard_threads > 1);
  // Decision records buffer per lane and merge at window barriers.
  decision_log_.enable_shard_buffers(
      part.shards + 1, [shards = part.shards] {
        const int s = Simulator::current_shard();
        return s >= 0 ? s : shards;
      });
  sim_.set_barrier_hook([this] { decision_log_.flush_shard_buffers(); });
  SORA_INFO << "experiment: sharded engine: " << part.shards
            << " shard(s), lookahead " << lookahead << "us, "
            << config_.shard_threads << " worker thread(s)";
}

void Experiment::start_all() {
  if (started_) return;
  started_ = true;
  configure_sharding();
  {
    // Workload generators drive the entry services, which the partitioner
    // pins to shard 0; their event chains belong on that lane. (A no-op
    // for the serial engine: the scope only sets a thread-local tag.)
    Simulator::ShardScope scope(0);
    for (auto& gen : open_loops_) gen->start();
    for (auto& gen : closed_loops_) gen->start();
    for (auto& src : workload_sources_) src->start();
  }
  // One loop drives every control plane, through the shared Controller
  // contract, in start order: frameworks first (preserving the historical
  // same-timestamp ordering between paired control planes), then hardware
  // scalers, then the bi-level/gradient controllers.
  control_loop_.clear();
  for (auto& fw : frameworks_) control_loop_.add(fw.get());
  for (auto& sc : scalers_) control_loop_.add(sc.get());
  for (auto& c : controllers_) control_loop_.add(c.get());
  control_loop_.start_all();
  if (fault_plan_.has_value()) {
    // Built here, not in enable_faults(): the hooks must see every control
    // plane added to the experiment, whatever the call order was.
    FaultInjector::Hooks hooks;
    hooks.sim = &sim_;
    hooks.app = app_.get();
    hooks.tracer = &tracer_;
    hooks.log = &decision_log_;
    hooks.controllers = control_loop_.controllers();
    for (auto& fw : frameworks_) hooks.frameworks.push_back(fw.get());
    fault_injector_ = std::make_unique<FaultInjector>(
        std::move(*fault_plan_), std::move(hooks), config_.seed);
    fault_injector_->arm();
  }
  if (!ctl_options_.has_value()) {
    // Opt-in without a rebuild: SORA_CTL_PORT=<port> attaches the
    // introspection server to any harness-built binary.
    if (const char* env = std::getenv("SORA_CTL_PORT")) {
      char* end = nullptr;
      const long port = std::strtol(env, &end, 10);
      if (end != env && *end == '\0' && port >= 0 && port <= 65535) {
        ctl::CtlOptions opts;
        opts.port = static_cast<int>(port);
        ctl_options_ = opts;
      } else {
        SORA_WARN << "ignoring invalid SORA_CTL_PORT '" << env << "'";
      }
    }
  }
  if (ctl_options_.has_value()) {
    // Built here, like the fault injector: the snapshot hooks must see
    // every control plane, whatever the enable_* call order was.
    ctl::CtlPlane::Hooks hooks;
    hooks.sim = &sim_;
    hooks.app = app_.get();
    hooks.recorder = recorder_.get();
    hooks.decision_log = &decision_log_;
    hooks.slo_monitor = slo_monitor_.get();
    hooks.fault_injector = fault_injector_.get();
    for (auto& fw : frameworks_) hooks.frameworks.push_back(fw.get());
    ctl_plane_ =
        std::make_unique<ctl::CtlPlane>(*ctl_options_, std::move(hooks));
    ctl_plane_->start();
  }
  if (!tracked_.empty()) {
    track_tick_ = sim_.schedule_periodic(config_.timeline_bucket,
                                         [this] { sample_tracked(); });
  }
  if (metrics_period_ > 0) {
    app_->metrics().begin_window();
    metrics_tick_ = sim_.schedule_periodic(metrics_period_, [this] {
      app_->publish_metrics();
      metrics_snapshots_.push_back(app_->metrics().snapshot());
      app_->metrics().begin_window();
    });
  }
  if (slo_monitor_ != nullptr) {
    slo_tick_ = sim_.schedule_periodic(
        slo_options_.monitor.bucket,
        [this] { slo_monitor_->evaluate(sim_.now()); });
  }
}

void Experiment::run() {
  start_all();
  sim_.run_until(sim_.now() + config_.duration);
  if (slo_monitor_ != nullptr) {
    // Close the books: final burn evaluation, open episodes end with the
    // run, and the partial attribution window is flushed.
    slo_monitor_->evaluate(sim_.now());
    slo_monitor_->finish(sim_.now());
    attributor_->flush(sim_.now());
  }
  // Leave the final state on the board so dashboards attached after the
  // run (or between phased runs) see the end-of-run picture.
  if (ctl_plane_ != nullptr) ctl_plane_->publish_now(false);
}

void Experiment::run_until(SimTime t) {
  start_all();
  sim_.run_until(t);
}

ExperimentSummary Experiment::summary() const {
  ExperimentSummary s;
  s.injected = app_->injected();
  s.completed = app_->completed();
  s.shed = recorder_->shed();
  s.mean_ms = recorder_->mean_ms();
  s.p50_ms = recorder_->percentile_ms(50.0);
  s.p95_ms = recorder_->percentile_ms(95.0);
  s.p99_ms = recorder_->percentile_ms(99.0);
  s.goodput_rps = recorder_->average_goodput();
  const SimTime elapsed = sim_.now();
  s.throughput_rps =
      elapsed > 0 ? static_cast<double>(s.completed) / to_sec(elapsed) : 0.0;
  s.good_fraction = recorder_->good_fraction();
  s.slo_episodes =
      slo_monitor_ != nullptr ? slo_monitor_->episodes().size() : 0;
  s.controller_overhead =
      obs::OverheadProfiler::global().stats_since(profile_baseline_);
  return s;
}

void Experiment::export_slo_report_text(std::ostream& os,
                                        const std::string& title) const {
  obs::SloReportInputs in;
  in.title = title;
  in.sla = config_.sla;
  in.latency = &recorder_->sketch();
  in.monitor = slo_monitor_.get();
  in.attribution = attributor_.get();
  in.decisions = &decision_log_;
  obs::write_slo_report_text(in, os);
}

void Experiment::export_slo_report_html(std::ostream& os,
                                        const std::string& title) const {
  obs::SloReportInputs in;
  in.title = title;
  in.sla = config_.sla;
  in.latency = &recorder_->sketch();
  in.monitor = slo_monitor_.get();
  in.attribution = attributor_.get();
  in.decisions = &decision_log_;
  obs::write_slo_report_html(in, os);
}

void Experiment::export_attribution_csv(std::ostream& os) const {
  if (attributor_ != nullptr) attributor_->write_csv(os);
}

void Experiment::export_burn_csv(const std::string& entity,
                                 std::ostream& os) const {
  if (slo_monitor_ != nullptr) slo_monitor_->burn_timeline(entity).write_csv(os);
}

std::size_t Experiment::export_chrome_trace(std::ostream& os,
                                            obs::ChromeTraceOptions options) const {
  return obs::export_chrome_trace(
      warehouse_,
      [this](ServiceId id) {
        const Service* svc = app_->service(id);
        return svc != nullptr ? svc->name()
                              : "service-" + std::to_string(id.value());
      },
      os, options);
}

obs::TimeSeriesSink Experiment::timeline_sink(const std::string& name) const {
  const std::vector<ServiceTimelinePoint>& points = timeline(name);
  obs::TimeSeriesSink sink(name,
                           {"util_pct", "limit_pct", "replicas",
                            "entry_capacity", "entry_in_use", "edge_capacity",
                            "edge_in_use"});
  for (const ServiceTimelinePoint& p : points) {
    const double row[] = {p.util_pct,
                          p.limit_pct,
                          static_cast<double>(p.replicas),
                          static_cast<double>(p.entry_capacity),
                          p.entry_in_use,
                          static_cast<double>(p.edge_capacity),
                          p.edge_in_use};
    sink.append(p.at, row);
  }
  return sink;
}

void Experiment::export_timelines_jsonl(std::ostream& os) const {
  for (const Tracked& t : tracked_) timeline_sink(t.name).write_jsonl(os);
}

void Experiment::export_timelines_csv(const std::string& name,
                                      std::ostream& os) const {
  timeline_sink(name).write_csv(os);
}

void Experiment::export_metrics_jsonl(std::ostream& os) {
  if (metrics_snapshots_.empty()) {
    app_->publish_metrics();
    obs::MetricsRegistry::write_jsonl(app_->metrics().snapshot(), os);
    return;
  }
  for (const obs::MetricsSnapshot& snap : metrics_snapshots_) {
    obs::MetricsRegistry::write_jsonl(snap, os);
  }
}

}  // namespace sora
