#include "harness/sweep.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

namespace sora {

int SweepRunner::default_worker_count() {
  if (const char* env = std::getenv("SORA_SWEEP_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

SweepRunner::SweepRunner(int threads)
    : threads_(threads > 0 ? threads : default_worker_count()) {}

void SweepRunner::run_indexed(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  const std::size_t workers =
      std::min<std::size_t>(static_cast<std::size_t>(threads_), n);
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mu;

  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        body(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
        // Drain the remaining indices so peers exit promptly.
        next.store(n, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace sora
