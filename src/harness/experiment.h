// Experiment harness.
//
// Wires a full run: simulator + tracer + warehouse + application + workload
// generators + (optionally) an autoscaler and a Sora/ConScale framework,
// plus per-second service timelines and client-side latency recording. All
// figure/table benches and the examples are built on this.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "admission/controller.h"
#include "autoscale/autothrottle.h"
#include "autoscale/firm.h"
#include "ctl/plane.h"
#include "autoscale/hpa.h"
#include "autoscale/lsram.h"
#include "autoscale/vpa.h"
#include "core/sora.h"
#include "fault/injector.h"
#include "harness/control_loop.h"
#include "metrics/latency_recorder.h"
#include "obs/budget.h"
#include "obs/chrome_trace.h"
#include "obs/decision_log.h"
#include "obs/profiler.h"
#include "obs/slo_monitor.h"
#include "obs/slo_report.h"
#include "obs/timeseries.h"
#include "sim/simulator.h"
#include "svc/application.h"
#include "trace/tracer.h"
#include "trace/warehouse.h"
#include "workload/generator.h"

namespace sora {

/// Configuration of Experiment::enable_slo_analytics.
struct SloAnalyticsOptions {
  obs::SloMonitorOptions monitor;
  /// Attribution aggregation window (one row per service per window);
  /// aligned with the control period so attribution lines up with the
  /// decision log.
  SimTime attribution_window = sec(15);
  /// Also track one SLO entity per service, fed by latency-budget slack
  /// (a hop is "bad" when it exhausted its propagated budget).
  bool per_service = true;
};

struct ExperimentConfig {
  /// Base RNG seed. Overridable at runtime via the SORA_SEED environment
  /// variable (parsed as an unsigned integer; logged at construction), so
  /// a rebuilt binary is not needed to rerun an experiment under a
  /// different seed.
  std::uint64_t seed = 42;
  SimTime duration = minutes(12);
  /// End-to-end SLA used for client-side goodput reporting.
  SimTime sla = msec(400);
  SimTime timeline_bucket = sec(1);
  std::size_t warehouse_capacity = 200000;
  /// Shard-lane count for the parallel engine (see set_shards); 0 = the
  /// classic serial engine. Overridable via SORA_SIM_SHARDS.
  int shards = 0;
  /// Worker threads executing shard lanes within a window (>= 1; only
  /// meaningful with shards >= 1). Overridable via SORA_SIM_THREADS.
  int shard_threads = 1;
};

/// One per-bucket sample of a tracked service's state.
struct ServiceTimelinePoint {
  SimTime at = 0;
  double util_pct = 0.0;    ///< pod CPU utilization, % of one core (K8s style)
  double limit_pct = 0.0;   ///< per-pod CPU limit, % of one core
  int replicas = 0;
  int entry_capacity = 0;   ///< aggregate thread-pool size
  double entry_in_use = 0;  ///< time-averaged busy threads
  int edge_capacity = 0;    ///< aggregate connection-pool size (if tracked)
  double edge_in_use = 0;
};

struct ExperimentSummary {
  std::uint64_t injected = 0;
  std::uint64_t completed = 0;
  /// End-user requests rejected by admission control (client view: fast
  /// error responses). Excluded from the latency percentiles below.
  std::uint64_t shed = 0;
  double mean_ms = 0.0;
  /// Tail percentiles from the recorder's mergeable quantile sketch
  /// (relative error bounded by the sketch accuracy, default 1%).
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double goodput_rps = 0.0;    ///< within SLA
  double throughput_rps = 0.0;
  double good_fraction = 0.0;
  /// SLO violation episodes detected by the monitor (0 when SLO analytics
  /// was not enabled).
  std::size_t slo_episodes = 0;
  /// Wall-clock cost of the control-plane stages incurred during this
  /// experiment (delta since the Experiment was constructed); substantiates
  /// the paper's §6 overhead claim. Sim results are unaffected.
  std::vector<obs::StageStats> controller_overhead;
};

class Experiment {
 public:
  Experiment(ApplicationConfig app_config, ExperimentConfig config);
  ~Experiment();

  Simulator& sim() { return sim_; }
  Application& app() { return *app_; }
  Tracer& tracer() { return tracer_; }
  TraceWarehouse& warehouse() { return warehouse_; }
  LatencyRecorder& recorder() { return *recorder_; }
  const ExperimentConfig& config() const { return config_; }

  // -- workload ---------------------------------------------------------------

  OpenLoopGenerator& open_loop(const WorkloadTrace& trace, RequestMix mix = RequestMix(0));
  ClosedLoopGenerator& closed_loop(int users, SimTime think_mean,
                                   RequestMix mix = RequestMix(0));

  /// Attach a pluggable workload source (e.g. ReplayWorkloadSource). The
  /// source is bound immediately — simulator, application target, a seed
  /// salted from the experiment seed by attach order, and the same
  /// completion observer the built-in generators use — and started at
  /// start_all() on shard lane 0 alongside them. Additive: the built-in
  /// open_loop/closed_loop generators stay available and compose, as do
  /// enable_faults/enable_admission and SLO analytics. Returns the source
  /// for knob access; the experiment takes ownership.
  WorkloadSource& set_workload_source(std::unique_ptr<WorkloadSource> source);

  // -- control planes -----------------------------------------------------------

  SoraFramework& add_sora(SoraFrameworkOptions options = {});
  HorizontalPodAutoscaler& add_hpa(HpaOptions options = {});
  VerticalPodAutoscaler& add_vpa(VpaOptions options = {});
  FirmAutoscaler& add_firm(FirmOptions options = {});
  AutothrottleController& add_autothrottle(AutothrottleOptions options = {});
  LsramController& add_lsram(LsramOptions options = {});

  /// Forward an autoscaler's scale events into a framework (Sora's
  /// Reallocation Module coordination).
  static void link(Autoscaler& scaler, SoraFramework& framework);

  /// Frameworks added so far, in add order (the causal profiler reads the
  /// first framework's localization report for cross-validation).
  const std::vector<std::unique_ptr<SoraFramework>>& frameworks() const {
    return frameworks_;
  }

  /// The loop driving every control plane added to this experiment
  /// (populated at start_all(), in start order: soft-resource frameworks,
  /// hardware scalers, then the bi-level/gradient controllers). Fault
  /// injection and the ctl plane take their controller lists from here.
  const ControlLoop& control_loop() const { return control_loop_; }

  // -- admission control ---------------------------------------------------------

  /// Install an admission controller on `service`, wired into this
  /// experiment's decision log and the application's metrics registry.
  /// Shed records land in decision_log(); shed/admit counters and the limit
  /// gauge in app().metrics(). Returns the controller for knob access.
  /// Call before the run; one controller per service (last call wins).
  AdmissionController& enable_admission(const std::string& service,
                                        AdmissionOptions options = {});

  // -- runtime introspection & control (ctl plane) ------------------------------

  /// Start the embedded introspection/control server (src/ctl) with the
  /// run: /metrics, /statusz, /logz, /decisions, and /ctl commands applied
  /// at safepoints. The plane is constructed and started at start_all(), so
  /// its snapshot hooks see every control plane added to the experiment.
  /// Also enabled automatically when the SORA_CTL_PORT environment variable
  /// is set (its value is the port). Call before the run; last call wins.
  void enable_ctl(ctl::CtlOptions options = {});
  /// The running plane; null before start_all() or when never enabled.
  ctl::CtlPlane* ctl_plane() { return ctl_plane_.get(); }

  // -- fault injection ----------------------------------------------------------

  /// Attach a deterministic fault plan. The injector is constructed and
  /// armed at start_all() — after every control plane was added — with RNG
  /// streams derived from the experiment seed, and records its events into
  /// this experiment's decision log. Call before the run; last plan wins.
  void enable_faults(FaultPlan plan);
  /// The armed injector (outcome counters); null before start_all() or when
  /// no plan was enabled.
  FaultInjector* fault_injector() { return fault_injector_.get(); }
  const FaultInjector* fault_injector() const { return fault_injector_.get(); }

  // -- timelines ----------------------------------------------------------------

  /// Track a service's per-bucket state; `edge_target` additionally tracks
  /// the connection pool toward that target.
  void track_service(const std::string& name, std::string edge_target = "");
  const std::vector<ServiceTimelinePoint>& timeline(
      const std::string& name) const;

  // -- telemetry ----------------------------------------------------------------

  /// The audit log every control plane added to this experiment records
  /// into (one record per decision point; exportable as JSONL).
  obs::DecisionLog& decision_log() { return decision_log_; }
  const obs::DecisionLog& decision_log() const { return decision_log_; }

  /// Publish application + simulator metrics and retain a windowed snapshot
  /// every `period` during the run. Call before the run starts.
  void enable_metrics_sampling(SimTime period);
  const std::vector<obs::MetricsSnapshot>& metrics_snapshots() const {
    return metrics_snapshots_;
  }

  // -- streaming SLO analytics --------------------------------------------------

  /// Turn on the streaming SLO layer. Call before the run starts. Every
  /// completed trace is budget-annotated (spans gain deadline/slack), fed to
  /// the burn-rate monitor and the per-service budget attributor; episodes
  /// are appended to the decision log.
  void enable_slo_analytics(SloAnalyticsOptions options = {});
  bool slo_analytics_enabled() const { return slo_monitor_ != nullptr; }
  obs::SloMonitor& slo_monitor() { return *slo_monitor_; }
  const obs::SloMonitor& slo_monitor() const { return *slo_monitor_; }
  obs::BudgetAttributor& attribution() { return *attributor_; }
  const obs::BudgetAttributor& attribution() const { return *attributor_; }

  /// The stitched SLO report (percentiles + burn + episodes + attribution).
  /// Valid after (or during) a run with SLO analytics enabled.
  void export_slo_report_text(std::ostream& os, const std::string& title) const;
  void export_slo_report_html(std::ostream& os, const std::string& title) const;
  /// Per-service attribution windows as combined CSV.
  void export_attribution_csv(std::ostream& os) const;
  /// Burn-rate timeline of one SLO entity ("e2e" or a service name) as CSV.
  void export_burn_csv(const std::string& entity, std::ostream& os) const;

  /// One JSONL line per control decision, in append order.
  void export_decision_log(std::ostream& os) const {
    decision_log_.write_jsonl(os);
  }
  /// Chrome trace_event JSON of the warehouse's retained traces. Returns
  /// the number of traces exported.
  std::size_t export_chrome_trace(std::ostream& os,
                                  obs::ChromeTraceOptions options = {}) const;
  /// A tracked service's timeline as a TimeSeriesSink (CSV/JSONL export).
  obs::TimeSeriesSink timeline_sink(const std::string& name) const;
  /// Every tracked service's timeline, one JSONL line per bucket.
  void export_timelines_jsonl(std::ostream& os) const;
  /// One tracked service's timeline as CSV.
  void export_timelines_csv(const std::string& name, std::ostream& os) const;
  /// Collected metrics snapshots as JSONL (takes one now if sampling was
  /// never enabled).
  void export_metrics_jsonl(std::ostream& os);

  // -- parallel engine ----------------------------------------------------------

  /// Partition the service graph across `n` shard lanes for the run
  /// (conservative lookahead windows; DESIGN.md §12). Call before
  /// start_all(). Needs a nonzero network latency — the lookahead is the
  /// minimum cross-shard edge latency — otherwise the run falls back to the
  /// serial engine with a warning. n >= 1; n == 1 still runs the full
  /// window/mailbox machinery and is the parity baseline for n > 1. n == 0
  /// restores the serial default. Also settable via SORA_SIM_SHARDS, with
  /// worker threads via SORA_SIM_THREADS and a latency override via
  /// SORA_NET_LATENCY_US (applied before the application is built).
  void set_shards(int n) { config_.shards = n; }
  int shards() const { return config_.shards; }
  /// True once start_all() actually configured the sharded engine.
  bool sharded() const { return sim_.sharding(); }

  // -- run ------------------------------------------------------------------------

  /// Start everything added so far and run until `config.duration`.
  void run();
  /// Run until an absolute sim time (for phased experiments).
  void run_until(SimTime t);
  /// Start generators/frameworks/scalers without advancing time.
  void start_all();

  ExperimentSummary summary() const;

 private:
  struct Tracked {
    std::string name;
    Service* service;
    std::string edge_target;
    double busy_snapshot = 0.0;
    double entry_snapshot = 0.0;
    double edge_snapshot = 0.0;
    SimTime last = 0;
    std::vector<ServiceTimelinePoint> points;
  };

  void sample_tracked();
  /// Partition the service graph and switch the simulator, tracer and
  /// decision log into sharded mode (no-op when config_.shards == 0 or the
  /// topology cannot be safely partitioned — zero-latency edges).
  void configure_sharding();

  ExperimentConfig config_;
  Simulator sim_;
  Tracer tracer_;
  TraceWarehouse warehouse_;
  std::unique_ptr<Application> app_;
  std::unique_ptr<LatencyRecorder> recorder_;

  std::vector<std::unique_ptr<OpenLoopGenerator>> open_loops_;
  std::vector<std::unique_ptr<ClosedLoopGenerator>> closed_loops_;
  std::vector<std::unique_ptr<WorkloadSource>> workload_sources_;
  std::vector<std::unique_ptr<SoraFramework>> frameworks_;
  std::vector<std::unique_ptr<Autoscaler>> scalers_;
  std::vector<std::unique_ptr<Controller>> controllers_;
  ControlLoop control_loop_;

  std::vector<Tracked> tracked_;
  EventHandle track_tick_;
  bool started_ = false;

  std::optional<FaultPlan> fault_plan_;
  std::unique_ptr<FaultInjector> fault_injector_;

  obs::DecisionLog decision_log_;
  std::vector<obs::MetricsSnapshot> metrics_snapshots_;
  SimTime metrics_period_ = 0;
  EventHandle metrics_tick_;

  SloAnalyticsOptions slo_options_;
  std::unique_ptr<obs::SloMonitor> slo_monitor_;
  std::unique_ptr<obs::BudgetAttributor> attributor_;
  EventHandle slo_tick_;
  // Profiler state at construction; summary() reports the delta, so
  // back-to-back experiments in one process attribute costs correctly.
  std::vector<obs::StageStats> profile_baseline_;

  // Declared last: the plane's server thread reads state owned by the
  // members above, so it must be torn down first.
  std::optional<ctl::CtlOptions> ctl_options_;
  std::unique_ptr<ctl::CtlPlane> ctl_plane_;
};

}  // namespace sora
