#include "harness/control_loop.h"

namespace sora {

void ControlLoop::add(Controller* controller) {
  if (controller == nullptr) return;
  for (Controller* c : controllers_) {
    if (c == controller) return;
  }
  controllers_.push_back(controller);
}

void ControlLoop::start_all() {
  for (Controller* c : controllers_) c->start();
}

void ControlLoop::stop_all() {
  for (Controller* c : controllers_) c->stop();
}

std::vector<ControlAction> ControlLoop::step_all() {
  std::vector<ControlAction> all;
  for (Controller* c : controllers_) {
    std::vector<ControlAction> acts = c->round();
    all.insert(all.end(), acts.begin(), acts.end());
  }
  return all;
}

}  // namespace sora
