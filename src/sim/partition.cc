#include "sim/partition.h"

#include <algorithm>
#include <numeric>

namespace sora::sim {

PartitionResult partition_service_graph(const std::vector<PartitionNode>& nodes,
                                        const std::vector<PartitionEdge>& edges,
                                        int shards) {
  PartitionResult result;
  result.shards = shards;
  if (shards < 1) {
    result.reason = "shard count must be >= 1";
    return result;
  }
  for (const PartitionEdge& e : edges) {
    const int n = static_cast<int>(nodes.size());
    if (e.from < 0 || e.from >= n || e.to < 0 || e.to >= n) {
      result.reason = "edge references a node out of range";
      return result;
    }
  }

  result.assignment.assign(nodes.size(), 0);
  std::vector<double> load(static_cast<std::size_t>(shards), 0.0);

  // Entry services are pinned to shard 0 with the workload generators.
  std::vector<int> rest;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].entry || shards == 1) {
      load[0] += nodes[i].weight;
    } else {
      rest.push_back(static_cast<int>(i));
    }
  }

  // Greedy longest-processing-time placement: heaviest nodes first onto the
  // least-loaded shard. Sorting by (weight desc, name asc) makes the result
  // a pure function of the graph — no pointer or hash order leaks in.
  std::sort(rest.begin(), rest.end(), [&nodes](int a, int b) {
    const PartitionNode& na = nodes[static_cast<std::size_t>(a)];
    const PartitionNode& nb = nodes[static_cast<std::size_t>(b)];
    if (na.weight != nb.weight) return na.weight > nb.weight;
    return na.name < nb.name;
  });
  for (const int i : rest) {
    int best = 0;
    for (int s = 1; s < shards; ++s) {
      if (load[static_cast<std::size_t>(s)] <
          load[static_cast<std::size_t>(best)]) {
        best = s;
      }
    }
    result.assignment[static_cast<std::size_t>(i)] = best;
    load[static_cast<std::size_t>(best)] += nodes[static_cast<std::size_t>(i)].weight;
  }

  // Lookahead = min latency over edges that actually cross shards. A
  // zero-latency cross edge means neighbouring shards could affect each
  // other instantaneously — no conservative window exists — so fail closed.
  result.lookahead = PartitionResult::kNoCrossEdges;
  for (const PartitionEdge& e : edges) {
    const int sa = result.assignment[static_cast<std::size_t>(e.from)];
    const int sb = result.assignment[static_cast<std::size_t>(e.to)];
    if (sa == sb) continue;
    if (e.latency <= 0) {
      result.assignment.clear();
      result.reason = "zero-latency cross-shard edge (between '" +
                      nodes[static_cast<std::size_t>(e.from)].name + "' and '" +
                      nodes[static_cast<std::size_t>(e.to)].name +
                      "'); falling back to one shard";
      return result;
    }
    result.lookahead = std::min(result.lookahead, e.latency);
  }
  result.ok = true;
  return result;
}

}  // namespace sora::sim
