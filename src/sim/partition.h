// Deterministic service-graph partitioner for the sharded simulator.
//
// Maps each service to a shard lane such that (a) the assignment is a pure
// function of the graph and the shard count — no RNG, no iteration-order
// dependence — so every rerun and every host produces the same split, and
// (b) shard loads are balanced within one node weight of optimal (greedy
// longest-processing-time bound). Entry services are pinned to shard 0,
// where the workload generators run, so request injection never crosses a
// shard boundary.
//
// The lookahead window for conservative synchronization is the minimum
// latency over edges that cross shards: any cross-shard message sent at time
// t arrives no earlier than t + lookahead, which is what lets each shard
// execute a whole window without peeking at its neighbours. A zero-latency
// cross-shard edge would collapse the window to nothing, so partitioning
// fails closed (ok = false) and the caller must fall back to one shard.
#pragma once

#include <string>
#include <vector>

#include "common/time.h"

namespace sora::sim {

struct PartitionNode {
  std::string name;
  double weight = 1.0;  // relative load estimate (e.g. replica count)
  bool entry = false;   // entry services are pinned to shard 0
};

struct PartitionEdge {
  int from = 0;  // index into the node list
  int to = 0;
  SimTime latency = 0;  // one-way delivery latency of this edge
};

struct PartitionResult {
  bool ok = false;
  std::string reason;
  int shards = 1;
  /// assignment[i] is the shard of node i; empty when !ok.
  std::vector<int> assignment;
  /// Minimum latency over cross-shard edges; kNoCrossEdges when the split
  /// produced none (every edge is internal), in which case any positive
  /// lookahead is safe.
  SimTime lookahead = 0;

  static constexpr SimTime kNoCrossEdges = kSimTimeNever;
};

/// Deterministically assign `nodes` to `shards` lanes. Entry nodes go to
/// shard 0; the rest are placed greedily by descending (weight, name) onto
/// the least-loaded shard (ties to the lowest index). Fails closed when a
/// cross-shard edge has latency <= 0.
PartitionResult partition_service_graph(const std::vector<PartitionNode>& nodes,
                                        const std::vector<PartitionEdge>& edges,
                                        int shards);

}  // namespace sora::sim
