// Discrete-event simulation engine.
//
// A Simulator owns a binary min-heap of timestamped events. Events scheduled
// for the same instant fire in scheduling order (FIFO), which together with
// seeded RNGs makes every run bit-for-bit reproducible.
//
// The default engine is single-threaded by design: microsecond-scale event
// handlers dominate, and determinism is a hard requirement for the
// experiments. (Multiple Simulators may run concurrently on different
// threads — see harness::SweepRunner — but one Simulator is never shared
// across threads.)
//
// Sharded mode (conservative PDES, opt-in via configure_shards): the run is
// partitioned into `shards` lanes, each with its own event heap, clock and
// seq counter, plus one "global" lane for events scheduled outside any shard
// context (controllers, periodic ticks, fault plan, ctl safepoints). The
// global lane is lane 0 — the pre-configuration lane — so infrastructure
// wired up before configure_shards is global automatically; only schedules
// made under a ShardScope (or from a shard event) land in shard lanes.
// Lanes advance in lookahead windows: every shard executes events strictly
// before W = min(E + lookahead, G, until) — E being the earliest pending
// shard event and G the earliest global event — then cross-lane sends
// buffered in per-(src,dst) mailboxes are drained, then global events at
// exactly W run. Because cross-shard sends arrive no earlier than
// E + lookahead >= W, each window's inputs are sealed before it executes and
// the result is independent of lane execution order (and of the worker
// thread schedule). Same-arrival cross-lane sends are merged by
// (arrival, sender, send_idx) — a key that does not depend on the shard
// count — so shards=1 and shards=N runs order every event identically.
//
// Hot-path layout (per lane): event callbacks live in a slab of pooled
// records indexed by a free list, so steady-state scheduling performs no
// heap allocation (callback captures up to UniqueFunction::kInlineSize bytes
// included). The heap itself stores 24-byte (time, seq, slot, generation)
// entries. Cancellation bumps the slot's generation counter and frees the
// record immediately — including its callback captures — leaving only a
// stale heap entry behind, which is skipped on pop; when more than half of
// the heap is stale it is compacted in place. The unsharded path operates
// directly on the inline lane-0 members and is byte-identical to the
// pre-sharding engine.
#pragma once

#include <atomic>
#include <cassert>
#include <condition_variable>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/function.h"
#include "common/time.h"

namespace sora {

namespace obs {
class MetricsRegistry;
}

class Simulator;

/// Handle to a scheduled event, usable to cancel it before it fires.
/// A handle is a (lane, slot, generation) ticket into the owning simulator's
/// event slab; it is cheap to copy and must not outlive the Simulator.
class EventHandle {
 public:
  EventHandle() = default;

  /// True if the event is still pending (not fired, not cancelled).
  bool pending() const;

  /// Cancel the event; a no-op if already fired or cancelled.
  void cancel();

 private:
  friend class Simulator;
  EventHandle(Simulator* sim, std::uint32_t lane, std::uint32_t slot,
              std::uint32_t gen)
      : sim_(sim), lane_(lane), slot_(slot), gen_(gen) {}

  Simulator* sim_ = nullptr;
  std::uint32_t lane_ = 0;
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;
};

class Simulator {
 public:
  using Callback = UniqueFunction;

  /// Registers this simulator as the calling thread's log clock so SORA_LOG
  /// lines carry the current sim time (see common/log.h).
  Simulator();
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time (of the calling context's lane when sharded).
  SimTime now() const {
    if (!configured_) [[likely]] return lane0_.now;
    return current_lane_const().now;
  }

  /// Schedule `cb` at absolute time `at` (must be >= now()).
  /// Returns a handle that can cancel the event.
  EventHandle schedule_at(SimTime at, Callback cb);

  /// Schedule `cb` after a relative delay (>= 0).
  EventHandle schedule_after(SimTime delay, Callback cb) {
    return schedule_at(now() + delay, std::move(cb));
  }

  /// Schedule `cb` every `period` starting at now()+period, until the
  /// returned handle is cancelled or the simulation ends.
  EventHandle schedule_periodic(SimTime period, Callback cb);

  /// Run until the event queue is empty or `until` is reached. Events at
  /// exactly `until` are executed. Advances now() to `until` (or the last
  /// executed event time if the queue drains first and it is later).
  void run_until(SimTime until);

  /// Run until the event queue is completely empty.
  void run_all();

  /// Execute at most one event; returns false if the queue is empty.
  /// Unsharded mode only.
  bool step();

  // --- Sharding (conservative PDES) -------------------------------------

  /// Split the run into `shards` lanes synchronized by `lookahead` windows
  /// (the minimum cross-shard delivery latency; see sim/partition.h).
  /// Must be called before the first event executes; `shards` >= 1. With
  /// shards == 1 the window machinery still runs (one shard lane + the
  /// global lane), which is what makes shards=1 the parity baseline for
  /// shards=N. `threads` worker threads (>= 1) execute shard lanes within a
  /// window; the output is identical for any thread count because lanes are
  /// disjoint between barriers.
  void configure_shards(int shards, SimTime lookahead, int threads = 1);

  /// True once configure_shards has been called.
  bool sharding() const { return configured_; }
  int shards() const { return shards_; }
  SimTime lookahead() const { return lookahead_; }

  /// The shard lane the calling thread is currently executing, or -1 when
  /// outside any shard context (global events, wiring code, other threads).
  static int current_shard() { return tls_lane_; }

  /// Pins the calling thread's shard context for the scope's lifetime, so
  /// schedules made while wiring (e.g. workload generator start) land in a
  /// chosen shard lane instead of the global lane.
  class ShardScope {
   public:
    explicit ShardScope(int shard) : prev_(tls_lane_) { tls_lane_ = shard; }
    ~ShardScope() { tls_lane_ = prev_; }
    ShardScope(const ShardScope&) = delete;
    ShardScope& operator=(const ShardScope&) = delete;

   private:
    int prev_;
  };

  /// Cross-lane send: deliver `cb` on shard `dst_shard` at now() + delay.
  /// `sender` / `send_idx` form the deterministic merge key for same-arrival
  /// sends (sender is a stable id of the sending entity — service id — and
  /// send_idx its private monotone counter); they must not depend on the
  /// shard count. Requires sharding() and delay >= lookahead for cross-shard
  /// destinations (the conservative-window guarantee).
  void send_cross(int dst_shard, std::uint64_t sender, std::uint64_t send_idx,
                  SimTime delay, Callback cb);

  /// Invoked at every window barrier after shard lanes quiesce and mailboxes
  /// drain, before global events run — and once more when run_until returns.
  /// Used to merge per-shard side buffers (e.g. decision-log records) in
  /// deterministic order.
  void set_barrier_hook(UniqueFunction hook) { barrier_hook_ = std::move(hook); }

  // --- Introspection ----------------------------------------------------

  /// Opt-in event-stream fingerprint: when enabled, every executed event
  /// folds its (time, seq) pair into an FNV-1a digest. Two runs that execute
  /// the same events in the same order at the same times digest equal — the
  /// causal profiler uses this to prove its control re-run is byte-identical
  /// to the primary. Off by default: the hot loop pays only an untaken
  /// branch. Enable before the first event executes for a meaningful value.
  /// Sharded digests combine per-lane digests and are comparable between
  /// runs with the same shard count (not across shard counts — lane-local
  /// seqs differ; cross-shard-count parity is proven on trace/decision/log
  /// digests instead).
  void set_digest_enabled(bool enabled) { digest_enabled_ = enabled; }
  bool digest_enabled() const { return digest_enabled_; }
  std::uint64_t digest() const;

  std::uint64_t events_executed() const;
  /// Scheduled-and-not-yet-fired events (cancelled events excluded).
  std::size_t events_pending() const;
  /// Events cancelled before firing over the simulator's lifetime.
  std::uint64_t events_cancelled() const;
  /// Raw heap entries including stale (cancelled) ones, across all lanes.
  /// Exposed for compaction regression tests.
  std::size_t heap_entries() const;

  /// Publish event-loop state (events executed/cancelled, queue depth, sim
  /// clock) into a metrics registry. Called by periodic samplers; the hot
  /// event loop itself stays untouched.
  void publish_metrics(obs::MetricsRegistry& metrics) const;

 private:
  friend class EventHandle;

  static constexpr std::uint32_t kNilSlot = UINT32_MAX;
  /// Below this heap size, stale entries are too cheap to be worth a
  /// compaction pass.
  static constexpr std::size_t kCompactMinHeap = 64;

  /// Pooled per-event state. `gen` identifies the current occupancy of the
  /// slot: heap entries and handles carry the generation they were issued
  /// under and become stale when it changes.
  struct EventRecord {
    Callback cb;
    std::uint32_t gen = 0;
    std::uint32_t next_free = kNilSlot;
    /// One-shot events own a heap entry; periodic chain anchors do not.
    bool queued = false;
  };

  struct HeapEntry {
    SimTime at;
    std::uint64_t seq;  // tie-break: FIFO among same-time events
    std::uint32_t slot;
    std::uint32_t gen;
  };

  /// Heap comparator: true when `a` fires after `b` (std::*_heap with this
  /// ordering keeps the earliest (time, seq) event on top).
  struct FiresAfter {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  /// One event loop: heap + record slab + clock + counters. The unsharded
  /// engine is exactly lane 0; sharded mode keeps lane 0 as the global lane
  /// and adds one lane per shard at indices 1..N. That assignment is what
  /// makes events scheduled before configure_shards (controller ticks,
  /// metrics exporters — anything wired up outside a shard scope) global
  /// events afterwards: their lane index, including the one captured inside
  /// periodic chains and outstanding EventHandles, stays 0.
  struct Lane {
    std::vector<HeapEntry> heap;
    std::vector<EventRecord> records;
    std::uint32_t free_head = kNilSlot;
    std::size_t stale_in_heap = 0;
    SimTime now = 0;
    std::uint64_t digest = 1469598103934665603ULL;  // FNV-1a offset basis
    std::uint64_t next_seq = 0;
    std::uint64_t events_executed = 0;
    std::uint64_t events_cancelled = 0;
  };

  /// A buffered cross-lane send, drained into the destination lane's heap
  /// at the next window barrier in (arrival, sender, send_idx) order.
  struct MailEntry {
    SimTime arrival;
    std::uint64_t sender;
    std::uint64_t send_idx;
    Callback cb;
  };

  std::uint32_t alloc_slot(Lane& lane);
  void release_slot(Lane& lane, std::uint32_t slot);
  bool slot_live(std::uint32_t lane, std::uint32_t slot,
                 std::uint32_t gen) const {
    const Lane& l = lane_const(lane);
    return slot < l.records.size() && l.records[slot].gen == gen;
  }
  void cancel_slot(std::uint32_t lane, std::uint32_t slot, std::uint32_t gen);

  /// Discard stale entries from the top of the heap; returns the earliest
  /// live entry, or nullptr when the queue is (effectively) empty.
  const HeapEntry* live_top(Lane& lane);
  /// Pop and execute the top entry (must be live).
  void execute_top(Lane& lane);
  /// Drop all stale entries and restore the heap invariant.
  void compact(Lane& lane);

  EventHandle schedule_in(Lane& lane, std::uint32_t lane_idx, SimTime at,
                          Callback cb);
  void schedule_tick(SimTime period, std::uint32_t lane_idx,
                     std::uint32_t chain_slot, std::uint32_t chain_gen);

  /// FNV-1a fold of one executed event's (time, seq) pair. Deliberately
  /// out of line: the digest branch in execute_top must stay a bare
  /// untaken test so the disabled-mode hot loop keeps its code layout.
  void fold_digest(Lane& lane, std::uint64_t at, std::uint64_t seq);

  // --- lane plumbing ----------------------------------------------------

  Lane& lane(std::uint32_t i) { return i == 0 ? lane0_ : *extra_[i - 1]; }
  const Lane& lane_const(std::uint32_t i) const {
    return i == 0 ? lane0_ : *extra_[i - 1];
  }
  std::uint32_t lane_count() const {
    return configured_ ? static_cast<std::uint32_t>(shards_) + 1 : 1;
  }
  std::uint32_t global_lane_index() const { return 0; }
  /// Lane index of shard `s` (shard ids are 0-based, lane 0 is global).
  std::uint32_t shard_lane_index(int s) const {
    return static_cast<std::uint32_t>(s) + 1;
  }
  /// Lane the calling context schedules into: the thread's shard lane, or
  /// the global lane outside any shard context. Unsharded: always lane 0.
  std::uint32_t current_lane_index() const {
    if (!configured_) return 0;
    const int s = tls_lane_;
    return s >= 0 ? shard_lane_index(s) : global_lane_index();
  }
  Lane& current_lane() { return lane(current_lane_index()); }
  const Lane& current_lane_const() const {
    return lane_const(current_lane_index());
  }

  // --- sharded window loop ----------------------------------------------

  void run_windows(SimTime until, bool drain_all);
  /// Earliest live event time across shard lanes (not the global lane).
  SimTime shard_min_top();
  /// Execute one lane's events with at < bound (or <= when inclusive), then
  /// advance its clock to bound.
  void run_lane(Lane& lane, SimTime bound, bool inclusive);
  /// Execute all shard lanes for one window, possibly on worker threads.
  void run_shards(SimTime bound, bool inclusive);
  /// Move buffered cross-lane sends into their destination lanes' heaps in
  /// deterministic (arrival, sender, send_idx) order.
  void drain_mailboxes();

  void start_workers(int threads);
  void stop_workers();
  void worker_main(int worker_idx);
  void run_claimed_lanes();

  Lane lane0_;  // unsharded engine; the global lane once configured
  std::vector<std::unique_ptr<Lane>> extra_;  // shard s at extra_[s]
  bool configured_ = false;
  bool digest_enabled_ = false;
  int shards_ = 1;
  SimTime lookahead_ = 0;

  /// mail_[src_lane][dst_shard]; src has shards_+1 entries (global sends).
  std::vector<std::vector<std::vector<MailEntry>>> mail_;
  std::vector<MailEntry> drain_scratch_;
  UniqueFunction barrier_hook_;

  // Worker pool (sharded mode with threads > 1).
  std::vector<std::thread> workers_;
  std::mutex pool_mu_;
  std::condition_variable pool_cv_;
  std::condition_variable pool_done_cv_;
  std::uint64_t job_gen_ = 0;
  SimTime job_bound_ = 0;
  bool job_inclusive_ = false;
  bool pool_stop_ = false;
  int lanes_remaining_ = 0;
  std::atomic<std::uint32_t> next_claim_{0};

  static thread_local int tls_lane_;
};

inline bool EventHandle::pending() const {
  return sim_ != nullptr && sim_->slot_live(lane_, slot_, gen_);
}

inline void EventHandle::cancel() {
  if (sim_ != nullptr) sim_->cancel_slot(lane_, slot_, gen_);
}

}  // namespace sora
