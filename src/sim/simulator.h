// Discrete-event simulation engine.
//
// A Simulator owns a priority queue of timestamped events. Events scheduled
// for the same instant fire in scheduling order (FIFO), which together with
// seeded RNGs makes every run bit-for-bit reproducible.
//
// The engine is single-threaded by design: microsecond-scale event handlers
// dominate, and determinism is a hard requirement for the experiments.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/time.h"

namespace sora {

namespace obs {
class MetricsRegistry;
}

/// Handle to a scheduled event, usable to cancel it before it fires.
class EventHandle {
 public:
  EventHandle() = default;

  /// True if the event is still pending (not fired, not cancelled).
  bool pending() const { return state_ && !*state_; }

  /// Cancel the event; a no-op if already fired or cancelled.
  void cancel() {
    if (state_) *state_ = true;
  }

 private:
  friend class Simulator;
  explicit EventHandle(std::shared_ptr<bool> state) : state_(std::move(state)) {}
  std::shared_ptr<bool> state_;  // true = cancelled/fired
};

class Simulator {
 public:
  using Callback = std::function<void()>;

  /// Registers this simulator as the process log clock so SORA_LOG lines
  /// carry the current sim time (see common/log.h).
  Simulator();
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time.
  SimTime now() const { return now_; }

  /// Schedule `cb` at absolute time `at` (must be >= now()).
  /// Returns a handle that can cancel the event.
  EventHandle schedule_at(SimTime at, Callback cb);

  /// Schedule `cb` after a relative delay (>= 0).
  EventHandle schedule_after(SimTime delay, Callback cb) {
    return schedule_at(now_ + delay, std::move(cb));
  }

  /// Schedule `cb` every `period` starting at now()+period, until the
  /// returned handle is cancelled or the simulation ends.
  EventHandle schedule_periodic(SimTime period, Callback cb);

  /// Run until the event queue is empty or `until` is reached. Events at
  /// exactly `until` are executed. Advances now() to `until` (or the last
  /// event time if the queue drains first and it is later).
  void run_until(SimTime until);

  /// Run until the event queue is completely empty.
  void run_all();

  /// Execute at most one event; returns false if the queue is empty.
  bool step();

  std::uint64_t events_executed() const { return events_executed_; }
  std::size_t events_pending() const { return queue_.size(); }

  /// Publish event-loop state (events executed, queue depth, sim clock)
  /// into a metrics registry. Called by periodic samplers; the hot event
  /// loop itself stays untouched.
  void publish_metrics(obs::MetricsRegistry& metrics) const;

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;  // tie-break: FIFO among same-time events
    Callback cb;
    std::shared_ptr<bool> cancelled;

    bool operator>(const Event& other) const {
      if (at != other.at) return at > other.at;
      return seq > other.seq;
    }
  };

  void execute(Event& ev);
  void schedule_tick(SimTime period, std::shared_ptr<Callback> cb,
                     std::shared_ptr<bool> stop);

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_executed_ = 0;
};

}  // namespace sora
