// Discrete-event simulation engine.
//
// A Simulator owns a binary min-heap of timestamped events. Events scheduled
// for the same instant fire in scheduling order (FIFO), which together with
// seeded RNGs makes every run bit-for-bit reproducible.
//
// The engine is single-threaded by design: microsecond-scale event handlers
// dominate, and determinism is a hard requirement for the experiments.
// (Multiple Simulators may run concurrently on different threads — see
// harness::SweepRunner — but one Simulator is never shared across threads.)
//
// Hot-path layout: event callbacks live in a slab of pooled records indexed
// by a free list, so steady-state scheduling performs no heap allocation
// (callback captures up to UniqueFunction::kInlineSize bytes included). The
// heap itself stores 24-byte (time, seq, slot, generation) entries.
// Cancellation bumps the slot's generation counter and frees the record
// immediately — including its callback captures — leaving only a stale heap
// entry behind, which is skipped on pop; when more than half of the heap is
// stale it is compacted in place.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "common/function.h"
#include "common/time.h"

namespace sora {

namespace obs {
class MetricsRegistry;
}

class Simulator;

/// Handle to a scheduled event, usable to cancel it before it fires.
/// A handle is a (slot, generation) ticket into the owning simulator's event
/// slab; it is cheap to copy and must not outlive the Simulator.
class EventHandle {
 public:
  EventHandle() = default;

  /// True if the event is still pending (not fired, not cancelled).
  bool pending() const;

  /// Cancel the event; a no-op if already fired or cancelled.
  void cancel();

 private:
  friend class Simulator;
  EventHandle(Simulator* sim, std::uint32_t slot, std::uint32_t gen)
      : sim_(sim), slot_(slot), gen_(gen) {}

  Simulator* sim_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;
};

class Simulator {
 public:
  using Callback = UniqueFunction;

  /// Registers this simulator as the calling thread's log clock so SORA_LOG
  /// lines carry the current sim time (see common/log.h).
  Simulator();
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time.
  SimTime now() const { return now_; }

  /// Schedule `cb` at absolute time `at` (must be >= now()).
  /// Returns a handle that can cancel the event.
  EventHandle schedule_at(SimTime at, Callback cb);

  /// Schedule `cb` after a relative delay (>= 0).
  EventHandle schedule_after(SimTime delay, Callback cb) {
    return schedule_at(now_ + delay, std::move(cb));
  }

  /// Schedule `cb` every `period` starting at now()+period, until the
  /// returned handle is cancelled or the simulation ends.
  EventHandle schedule_periodic(SimTime period, Callback cb);

  /// Run until the event queue is empty or `until` is reached. Events at
  /// exactly `until` are executed. Advances now() to `until` (or the last
  /// executed event time if the queue drains first and it is later).
  void run_until(SimTime until);

  /// Run until the event queue is completely empty.
  void run_all();

  /// Execute at most one event; returns false if the queue is empty.
  bool step();

  /// Opt-in event-stream fingerprint: when enabled, every executed event
  /// folds its (time, seq) pair into an FNV-1a digest. Two runs that execute
  /// the same events in the same order at the same times digest equal — the
  /// causal profiler uses this to prove its control re-run is byte-identical
  /// to the primary. Off by default: the hot loop pays only an untaken
  /// branch. Enable before the first event executes for a meaningful value.
  void set_digest_enabled(bool enabled) { digest_enabled_ = enabled; }
  bool digest_enabled() const { return digest_enabled_; }
  std::uint64_t digest() const { return digest_; }

  std::uint64_t events_executed() const { return events_executed_; }
  /// Scheduled-and-not-yet-fired events (cancelled events excluded).
  std::size_t events_pending() const { return heap_.size() - stale_in_heap_; }
  /// Events cancelled before firing over the simulator's lifetime.
  std::uint64_t events_cancelled() const { return events_cancelled_; }

  /// Publish event-loop state (events executed/cancelled, queue depth, sim
  /// clock) into a metrics registry. Called by periodic samplers; the hot
  /// event loop itself stays untouched.
  void publish_metrics(obs::MetricsRegistry& metrics) const;

 private:
  friend class EventHandle;

  static constexpr std::uint32_t kNilSlot = UINT32_MAX;
  /// Below this heap size, stale entries are too cheap to be worth a
  /// compaction pass.
  static constexpr std::size_t kCompactMinHeap = 64;

  /// Pooled per-event state. `gen` identifies the current occupancy of the
  /// slot: heap entries and handles carry the generation they were issued
  /// under and become stale when it changes.
  struct EventRecord {
    Callback cb;
    std::uint32_t gen = 0;
    std::uint32_t next_free = kNilSlot;
    /// One-shot events own a heap entry; periodic chain anchors do not.
    bool queued = false;
  };

  struct HeapEntry {
    SimTime at;
    std::uint64_t seq;  // tie-break: FIFO among same-time events
    std::uint32_t slot;
    std::uint32_t gen;
  };

  /// Heap comparator: true when `a` fires after `b` (std::*_heap with this
  /// ordering keeps the earliest (time, seq) event on top).
  struct FiresAfter {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::uint32_t alloc_slot();
  void release_slot(std::uint32_t slot);
  bool slot_live(std::uint32_t slot, std::uint32_t gen) const {
    return records_[slot].gen == gen;
  }
  void cancel_slot(std::uint32_t slot, std::uint32_t gen);

  /// Discard stale entries from the top of the heap; returns the earliest
  /// live entry, or nullptr when the queue is (effectively) empty.
  const HeapEntry* live_top();
  /// Pop and execute the top entry (must be live).
  void execute_top();
  /// Drop all stale entries and restore the heap invariant.
  void compact();

  void schedule_tick(SimTime period, std::uint32_t chain_slot,
                     std::uint32_t chain_gen);

  std::vector<HeapEntry> heap_;
  std::vector<EventRecord> records_;
  std::uint32_t free_head_ = kNilSlot;
  std::size_t stale_in_heap_ = 0;

  /// FNV-1a fold of one executed event's (time, seq) pair. Deliberately
  /// out of line: the digest branch in execute_top must stay a bare
  /// untaken test so the disabled-mode hot loop keeps its code layout.
  void fold_digest(std::uint64_t at, std::uint64_t seq);

  SimTime now_ = 0;
  bool digest_enabled_ = false;
  std::uint64_t digest_ = 1469598103934665603ULL;  // FNV-1a offset basis
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_executed_ = 0;
  std::uint64_t events_cancelled_ = 0;
};

inline bool EventHandle::pending() const {
  return sim_ != nullptr && sim_->slot_live(slot_, gen_);
}

inline void EventHandle::cancel() {
  if (sim_ != nullptr) sim_->cancel_slot(slot_, gen_);
}

}  // namespace sora
