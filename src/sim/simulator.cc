#include "sim/simulator.h"

#include <cassert>
#include <utility>

namespace sora {

EventHandle Simulator::schedule_at(SimTime at, Callback cb) {
  assert(at >= now_ && "cannot schedule in the past");
  auto state = std::make_shared<bool>(false);
  queue_.push(Event{at, next_seq_++, std::move(cb), state});
  return EventHandle(std::move(state));
}

EventHandle Simulator::schedule_periodic(SimTime period, Callback cb) {
  assert(period > 0);
  // `stop` is the user-facing cancellation flag for the whole chain; each
  // individual firing is scheduled as a regular one-shot event (execute()
  // marks those fired via their own per-event flag, so the chain flag stays
  // under our control).
  auto stop = std::make_shared<bool>(false);
  auto tick = std::make_shared<std::function<void()>>();
  *tick = [this, period, cb = std::move(cb), stop, tick]() {
    if (*stop) return;
    cb();
    if (!*stop) {
      schedule_at(now_ + period, *tick);
    }
  };
  schedule_at(now_ + period, *tick);
  return EventHandle(std::move(stop));
}

void Simulator::execute(Event& ev) {
  now_ = ev.at;
  if (*ev.cancelled) return;
  *ev.cancelled = true;  // mark fired so handles report !pending()
  ++events_executed_;
  ev.cb();
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  execute(ev);
  return true;
}

void Simulator::run_until(SimTime until) {
  while (!queue_.empty() && queue_.top().at <= until) {
    step();
  }
  if (now_ < until) now_ = until;
}

void Simulator::run_all() {
  while (step()) {
  }
}

}  // namespace sora
