#include "sim/simulator.h"

#include <algorithm>
#include <utility>

#include "common/log.h"
#include "obs/metrics.h"

namespace sora {

Simulator::Simulator() {
  set_log_clock(this, [](const void* ctx) {
    return static_cast<const Simulator*>(ctx)->now();
  });
}

Simulator::~Simulator() { clear_log_clock(this); }

void Simulator::publish_metrics(obs::MetricsRegistry& metrics) const {
  metrics.counter("sim.events_executed").set_total(
      static_cast<double>(events_executed_));
  metrics.counter("sim.events_cancelled").set_total(
      static_cast<double>(events_cancelled_));
  metrics.gauge("sim.events_pending").set(
      static_cast<double>(events_pending()));
  metrics.gauge("sim.now_us").set(static_cast<double>(now_));
}

std::uint32_t Simulator::alloc_slot() {
  if (free_head_ != kNilSlot) {
    const std::uint32_t slot = free_head_;
    free_head_ = records_[slot].next_free;
    return slot;
  }
  records_.emplace_back();
  return static_cast<std::uint32_t>(records_.size() - 1);
}

void Simulator::release_slot(std::uint32_t slot) {
  EventRecord& rec = records_[slot];
  rec.cb.reset();
  ++rec.gen;  // invalidates outstanding handles and heap entries
  rec.queued = false;
  rec.next_free = free_head_;
  free_head_ = slot;
}

void Simulator::cancel_slot(std::uint32_t slot, std::uint32_t gen) {
  if (!slot_live(slot, gen)) return;
  const bool was_queued = records_[slot].queued;
  release_slot(slot);  // frees the callback's captures immediately
  ++events_cancelled_;
  if (was_queued) {
    ++stale_in_heap_;
    if (heap_.size() >= kCompactMinHeap && stale_in_heap_ * 2 > heap_.size()) {
      compact();
    }
  }
}

void Simulator::compact() {
  std::erase_if(heap_, [this](const HeapEntry& e) {
    return records_[e.slot].gen != e.gen;
  });
  std::make_heap(heap_.begin(), heap_.end(), FiresAfter{});
  stale_in_heap_ = 0;
}

EventHandle Simulator::schedule_at(SimTime at, Callback cb) {
  assert(at >= now_ && "cannot schedule in the past");
  const std::uint32_t slot = alloc_slot();
  EventRecord& rec = records_[slot];
  rec.cb = std::move(cb);
  rec.queued = true;
  heap_.push_back(HeapEntry{at, next_seq_++, slot, rec.gen});
  std::push_heap(heap_.begin(), heap_.end(), FiresAfter{});
  return EventHandle(this, slot, rec.gen);
}

EventHandle Simulator::schedule_periodic(SimTime period, Callback cb) {
  assert(period > 0);
  // The chain's user callback lives in an anchor slot that is never queued;
  // each firing is a small one-shot event referencing the anchor. Cancelling
  // the handle frees the anchor, so the next tick sees a stale generation
  // and the chain stops (and its state is already released).
  const std::uint32_t slot = alloc_slot();
  EventRecord& rec = records_[slot];
  rec.cb = std::move(cb);
  const std::uint32_t gen = rec.gen;
  schedule_tick(period, slot, gen);
  return EventHandle(this, slot, gen);
}

void Simulator::schedule_tick(SimTime period, std::uint32_t chain_slot,
                              std::uint32_t chain_gen) {
  schedule_at(now_ + period, [this, period, chain_slot, chain_gen] {
    if (!slot_live(chain_slot, chain_gen)) return;  // chain cancelled
    // Run the callback from a local so the slab may grow (or the chain
    // cancel itself) underneath us, then put it back if the chain survived.
    Callback cb = std::move(records_[chain_slot].cb);
    cb();
    if (slot_live(chain_slot, chain_gen)) {
      records_[chain_slot].cb = std::move(cb);
      schedule_tick(period, chain_slot, chain_gen);
    }
  });
}

const Simulator::HeapEntry* Simulator::live_top() {
  while (!heap_.empty()) {
    const HeapEntry& top = heap_.front();
    if (records_[top.slot].gen == top.gen) return &top;
    std::pop_heap(heap_.begin(), heap_.end(), FiresAfter{});
    heap_.pop_back();
    --stale_in_heap_;
  }
  return nullptr;
}

void Simulator::execute_top() {
  const HeapEntry top = heap_.front();
  std::pop_heap(heap_.begin(), heap_.end(), FiresAfter{});
  heap_.pop_back();
  now_ = top.at;
  if (digest_enabled_) [[unlikely]] {
    fold_digest(static_cast<std::uint64_t>(top.at), top.seq);
  }
  // Free the slot before invoking so handles report !pending() inside the
  // callback and the slot is immediately reusable by new events.
  Callback cb = std::move(records_[top.slot].cb);
  release_slot(top.slot);
  ++events_executed_;
  cb();
}

void Simulator::fold_digest(std::uint64_t at, std::uint64_t seq) {
  // FNV-1a over the (time, seq) pair of every executed event: a full
  // fingerprint of the schedule without touching callback state.
  const auto fold = [this](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      digest_ ^= (v >> (i * 8)) & 0xff;
      digest_ *= 1099511628211ULL;  // FNV prime
    }
  };
  fold(at);
  fold(seq);
}

bool Simulator::step() {
  if (live_top() == nullptr) return false;
  execute_top();
  return true;
}

void Simulator::run_until(SimTime until) {
  for (const HeapEntry* top; (top = live_top()) != nullptr && top->at <= until;) {
    execute_top();
  }
  if (now_ < until) now_ = until;
}

void Simulator::run_all() {
  while (step()) {
  }
}

}  // namespace sora
