#include "sim/simulator.h"

#include <algorithm>
#include <utility>

#include "common/log.h"
#include "obs/metrics.h"

namespace sora {

namespace {
constexpr SimTime kNoEvent = std::numeric_limits<SimTime>::max();

SimTime sat_add(SimTime a, SimTime b) {
  if (a >= kNoEvent - b) return kNoEvent;
  return a + b;
}
}  // namespace

thread_local int Simulator::tls_lane_ = -1;

Simulator::Simulator() {
  set_log_clock(this, [](const void* ctx) {
    return static_cast<const Simulator*>(ctx)->now();
  });
}

Simulator::~Simulator() {
  stop_workers();
  clear_log_clock(this);
}

void Simulator::publish_metrics(obs::MetricsRegistry& metrics) const {
  metrics.counter("sim.events_executed").set_total(
      static_cast<double>(events_executed()));
  metrics.counter("sim.events_cancelled").set_total(
      static_cast<double>(events_cancelled()));
  metrics.gauge("sim.events_pending").set(
      static_cast<double>(events_pending()));
  metrics.gauge("sim.now_us").set(static_cast<double>(now()));
}

std::uint64_t Simulator::digest() const {
  if (!configured_) return lane0_.digest;
  // Combine per-lane digests in lane order. Comparable between runs with the
  // same shard count only; see the header note.
  std::uint64_t h = 1469598103934665603ULL;
  for (std::uint32_t i = 0; i < lane_count(); ++i) {
    std::uint64_t v = lane_const(i).digest;
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (b * 8)) & 0xff;
      h *= 1099511628211ULL;
    }
  }
  return h;
}

std::uint64_t Simulator::events_executed() const {
  std::uint64_t n = 0;
  for (std::uint32_t i = 0; i < lane_count(); ++i) {
    n += lane_const(i).events_executed;
  }
  return n;
}

std::uint64_t Simulator::events_cancelled() const {
  std::uint64_t n = 0;
  for (std::uint32_t i = 0; i < lane_count(); ++i) {
    n += lane_const(i).events_cancelled;
  }
  return n;
}

std::size_t Simulator::events_pending() const {
  std::size_t n = 0;
  for (std::uint32_t i = 0; i < lane_count(); ++i) {
    const Lane& l = lane_const(i);
    n += l.heap.size() - l.stale_in_heap;
  }
  for (const auto& per_src : mail_) {
    for (const auto& box : per_src) n += box.size();
  }
  return n;
}

std::size_t Simulator::heap_entries() const {
  std::size_t n = 0;
  for (std::uint32_t i = 0; i < lane_count(); ++i) {
    n += lane_const(i).heap.size();
  }
  return n;
}

std::uint32_t Simulator::alloc_slot(Lane& l) {
  if (l.free_head != kNilSlot) {
    const std::uint32_t slot = l.free_head;
    l.free_head = l.records[slot].next_free;
    return slot;
  }
  l.records.emplace_back();
  return static_cast<std::uint32_t>(l.records.size() - 1);
}

void Simulator::release_slot(Lane& l, std::uint32_t slot) {
  EventRecord& rec = l.records[slot];
  rec.cb.reset();
  ++rec.gen;  // invalidates outstanding handles and heap entries
  rec.queued = false;
  rec.next_free = l.free_head;
  l.free_head = slot;
}

void Simulator::cancel_slot(std::uint32_t lane_idx, std::uint32_t slot,
                            std::uint32_t gen) {
  if (!slot_live(lane_idx, slot, gen)) return;
  Lane& l = lane(lane_idx);
  const bool was_queued = l.records[slot].queued;
  release_slot(l, slot);  // frees the callback's captures immediately
  ++l.events_cancelled;
  if (was_queued) {
    ++l.stale_in_heap;
    if (l.heap.size() >= kCompactMinHeap &&
        l.stale_in_heap * 2 > l.heap.size()) {
      compact(l);
    }
  }
}

void Simulator::compact(Lane& l) {
  std::erase_if(l.heap, [&l](const HeapEntry& e) {
    return l.records[e.slot].gen != e.gen;
  });
  std::make_heap(l.heap.begin(), l.heap.end(), FiresAfter{});
  l.stale_in_heap = 0;
}

EventHandle Simulator::schedule_in(Lane& l, std::uint32_t lane_idx, SimTime at,
                                   Callback cb) {
  assert(at >= l.now && "cannot schedule in the past");
  const std::uint32_t slot = alloc_slot(l);
  EventRecord& rec = l.records[slot];
  rec.cb = std::move(cb);
  rec.queued = true;
  l.heap.push_back(HeapEntry{at, l.next_seq++, slot, rec.gen});
  std::push_heap(l.heap.begin(), l.heap.end(), FiresAfter{});
  return EventHandle(this, lane_idx, slot, rec.gen);
}

EventHandle Simulator::schedule_at(SimTime at, Callback cb) {
  const std::uint32_t idx = current_lane_index();
  return schedule_in(lane(idx), idx, at, std::move(cb));
}

EventHandle Simulator::schedule_periodic(SimTime period, Callback cb) {
  assert(period > 0);
  // The chain's user callback lives in an anchor slot that is never queued;
  // each firing is a small one-shot event referencing the anchor. Cancelling
  // the handle frees the anchor, so the next tick sees a stale generation
  // and the chain stops (and its state is already released).
  const std::uint32_t idx = current_lane_index();
  Lane& l = lane(idx);
  const std::uint32_t slot = alloc_slot(l);
  EventRecord& rec = l.records[slot];
  rec.cb = std::move(cb);
  const std::uint32_t gen = rec.gen;
  schedule_tick(period, idx, slot, gen);
  return EventHandle(this, idx, slot, gen);
}

void Simulator::schedule_tick(SimTime period, std::uint32_t lane_idx,
                              std::uint32_t chain_slot,
                              std::uint32_t chain_gen) {
  Lane& l = lane(lane_idx);
  schedule_in(l, lane_idx, l.now + period,
              [this, period, lane_idx, chain_slot, chain_gen] {
    if (!slot_live(lane_idx, chain_slot, chain_gen)) return;  // cancelled
    // Run the callback from a local so the slab may grow (or the chain
    // cancel itself) underneath us, then put it back if the chain survived.
    Callback cb = std::move(lane(lane_idx).records[chain_slot].cb);
    cb();
    if (slot_live(lane_idx, chain_slot, chain_gen)) {
      lane(lane_idx).records[chain_slot].cb = std::move(cb);
      schedule_tick(period, lane_idx, chain_slot, chain_gen);
    }
  });
}

const Simulator::HeapEntry* Simulator::live_top(Lane& l) {
  while (!l.heap.empty()) {
    const HeapEntry& top = l.heap.front();
    if (l.records[top.slot].gen == top.gen) return &top;
    std::pop_heap(l.heap.begin(), l.heap.end(), FiresAfter{});
    l.heap.pop_back();
    --l.stale_in_heap;
  }
  return nullptr;
}

void Simulator::execute_top(Lane& l) {
  const HeapEntry top = l.heap.front();
  std::pop_heap(l.heap.begin(), l.heap.end(), FiresAfter{});
  l.heap.pop_back();
  l.now = top.at;
  if (digest_enabled_) [[unlikely]] {
    fold_digest(l, static_cast<std::uint64_t>(top.at), top.seq);
  }
  // Free the slot before invoking so handles report !pending() inside the
  // callback and the slot is immediately reusable by new events.
  Callback cb = std::move(l.records[top.slot].cb);
  release_slot(l, top.slot);
  ++l.events_executed;
  cb();
}

void Simulator::fold_digest(Lane& l, std::uint64_t at, std::uint64_t seq) {
  // FNV-1a over the (time, seq) pair of every executed event: a full
  // fingerprint of the schedule without touching callback state.
  const auto fold = [&l](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      l.digest ^= (v >> (i * 8)) & 0xff;
      l.digest *= 1099511628211ULL;  // FNV prime
    }
  };
  fold(at);
  fold(seq);
}

bool Simulator::step() {
  assert(!configured_ && "step() is unsharded-only");
  if (live_top(lane0_) == nullptr) return false;
  execute_top(lane0_);
  return true;
}

void Simulator::run_until(SimTime until) {
  if (configured_) {
    run_windows(until, /*drain_all=*/false);
    for (std::uint32_t i = 0; i < lane_count(); ++i) {
      Lane& l = lane(i);
      if (l.now < until) l.now = until;
    }
    return;
  }
  Lane& l = lane0_;
  for (const HeapEntry* top;
       (top = live_top(l)) != nullptr && top->at <= until;) {
    execute_top(l);
  }
  if (l.now < until) l.now = until;
}

void Simulator::run_all() {
  if (configured_) {
    run_windows(kNoEvent, /*drain_all=*/true);
    return;
  }
  while (live_top(lane0_) != nullptr) {
    execute_top(lane0_);
  }
}

// --- Sharded mode ---------------------------------------------------------

void Simulator::configure_shards(int shards, SimTime lookahead, int threads) {
  assert(!configured_ && "configure_shards may only be called once");
  assert(shards >= 1);
  assert(lookahead > 0 && "conservative windows need a positive lookahead");
  configured_ = true;
  shards_ = shards;
  lookahead_ = lookahead;
  // Lane 0 (the inline members) becomes the global lane, keeping any events
  // scheduled before configuration — controller and observability wiring —
  // global, together with the lane index captured in their periodic chains
  // and handles. Shard s lives at extra_[s] (lane index s + 1).
  extra_.clear();
  for (int i = 0; i < shards; ++i) {
    extra_.push_back(std::make_unique<Lane>());
    extra_.back()->now = lane0_.now;
  }
  mail_.clear();
  mail_.resize(static_cast<std::size_t>(shards) + 1);
  for (auto& per_src : mail_) per_src.resize(static_cast<std::size_t>(shards));
  if (threads > shards) threads = shards;
  if (threads > 1) start_workers(threads);
}

void Simulator::send_cross(int dst_shard, std::uint64_t sender,
                           std::uint64_t send_idx, SimTime delay,
                           Callback cb) {
  assert(configured_);
  assert(dst_shard >= 0 && dst_shard < shards_);
  assert(delay >= lookahead_ &&
         "cross-lane delay below the conservative lookahead window");
  const std::uint32_t src = current_lane_index();
  mail_[src][static_cast<std::size_t>(dst_shard)].push_back(
      MailEntry{current_lane().now + delay, sender, send_idx, std::move(cb)});
}

SimTime Simulator::shard_min_top() {
  SimTime e = kNoEvent;
  for (int i = 0; i < shards_; ++i) {
    const HeapEntry* top = live_top(lane(shard_lane_index(i)));
    if (top != nullptr && top->at < e) e = top->at;
  }
  return e;
}

void Simulator::drain_mailboxes() {
  for (int dst = 0; dst < shards_; ++dst) {
    drain_scratch_.clear();
    for (auto& per_src : mail_) {
      auto& box = per_src[static_cast<std::size_t>(dst)];
      for (auto& entry : box) drain_scratch_.push_back(std::move(entry));
      box.clear();
    }
    if (drain_scratch_.empty()) continue;
    // The merge key is independent of the shard count: arrival time, then
    // the sending entity's stable id, then its private send counter. This is
    // what makes shards=1 and shards=N order same-arrival events alike.
    std::stable_sort(drain_scratch_.begin(), drain_scratch_.end(),
                     [](const MailEntry& a, const MailEntry& b) {
                       if (a.arrival != b.arrival) return a.arrival < b.arrival;
                       if (a.sender != b.sender) return a.sender < b.sender;
                       return a.send_idx < b.send_idx;
                     });
    Lane& l = lane(shard_lane_index(dst));
    for (auto& entry : drain_scratch_) {
      assert(entry.arrival >= l.now && "mailbox entry arrived in the past");
      schedule_in(l, shard_lane_index(dst), entry.arrival,
                  std::move(entry.cb));
    }
    drain_scratch_.clear();
  }
}

void Simulator::run_lane(Lane& l, SimTime bound, bool inclusive) {
  for (const HeapEntry* top; (top = live_top(l)) != nullptr;) {
    if (top->at > bound || (!inclusive && top->at == bound)) break;
    execute_top(l);
  }
  if (l.now < bound) l.now = bound;
}

void Simulator::run_shards(SimTime bound, bool inclusive) {
  if (workers_.empty()) {
    for (int i = 0; i < shards_; ++i) {
      tls_lane_ = i;
      run_lane(lane(shard_lane_index(i)), bound, inclusive);
      tls_lane_ = -1;
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    job_bound_ = bound;
    job_inclusive_ = inclusive;
    lanes_remaining_ = shards_;
    next_claim_.store(0, std::memory_order_relaxed);
    ++job_gen_;
  }
  pool_cv_.notify_all();
  run_claimed_lanes();
  std::unique_lock<std::mutex> lock(pool_mu_);
  pool_done_cv_.wait(lock, [this] { return lanes_remaining_ == 0; });
}

void Simulator::run_claimed_lanes() {
  for (;;) {
    const std::uint32_t i = next_claim_.fetch_add(1, std::memory_order_relaxed);
    if (i >= static_cast<std::uint32_t>(shards_)) break;
    tls_lane_ = static_cast<int>(i);
    run_lane(lane(shard_lane_index(static_cast<int>(i))), job_bound_,
             job_inclusive_);
    tls_lane_ = -1;
    std::lock_guard<std::mutex> lock(pool_mu_);
    if (--lanes_remaining_ == 0) pool_done_cv_.notify_all();
  }
}

void Simulator::start_workers(int threads) {
  const int extra_workers = threads - 1;  // the driving thread participates
  workers_.reserve(static_cast<std::size_t>(extra_workers));
  for (int w = 0; w < extra_workers; ++w) {
    workers_.emplace_back([this, w] { worker_main(w); });
  }
}

void Simulator::worker_main(int /*worker_idx*/) {
  set_log_clock(this, [](const void* ctx) {
    return static_cast<const Simulator*>(ctx)->now();
  });
  std::uint64_t seen_gen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(pool_mu_);
      pool_cv_.wait(lock,
                    [&] { return pool_stop_ || job_gen_ != seen_gen; });
      if (pool_stop_) break;
      seen_gen = job_gen_;
    }
    run_claimed_lanes();
  }
  clear_log_clock(this);
}

void Simulator::stop_workers() {
  if (workers_.empty()) return;
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    pool_stop_ = true;
  }
  pool_cv_.notify_all();
  for (auto& t : workers_) t.join();
  workers_.clear();
}

void Simulator::run_windows(SimTime until, bool drain_all) {
  Lane& g = lane(global_lane_index());
  for (;;) {
    drain_mailboxes();
    const SimTime e = shard_min_top();
    const HeapEntry* gtop = live_top(g);
    const SimTime gt = gtop != nullptr ? gtop->at : kNoEvent;
    const SimTime next = std::min(e, gt);
    if (next == kNoEvent) break;  // all lanes and mailboxes empty
    if (!drain_all && next > until) break;
    SimTime w = std::min(sat_add(e, lookahead_), gt);
    if (!drain_all) w = std::min(w, until);
    // Shards execute strictly below the window edge (their state is disjoint
    // between barriers, so lane order and thread schedule cannot matter),
    // then per-shard side buffers merge, then global events at exactly the
    // edge run — the serial engine's globals-before-shard-work tie rule.
    run_shards(w, /*inclusive=*/false);
    if (barrier_hook_) barrier_hook_();
    run_lane(g, w, /*inclusive=*/true);
    if (!drain_all && w == until) {
      // Final edge: events at exactly `until` must fire (run_until contract)
      // and globals at `until` have already run. Mailbox sends made here
      // arrive at >= until + lookahead and stay pending for the next call.
      drain_mailboxes();
      if (shard_min_top() <= until) {
        run_shards(until, /*inclusive=*/true);
        if (barrier_hook_) barrier_hook_();
      }
    }
  }
  if (barrier_hook_) barrier_hook_();
}

}  // namespace sora
