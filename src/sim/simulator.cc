#include "sim/simulator.h"

#include <cassert>
#include <utility>

#include "common/log.h"
#include "obs/metrics.h"

namespace sora {

Simulator::Simulator() {
  set_log_clock(this, [](const void* ctx) {
    return static_cast<const Simulator*>(ctx)->now();
  });
}

Simulator::~Simulator() { clear_log_clock(this); }

void Simulator::publish_metrics(obs::MetricsRegistry& metrics) const {
  metrics.counter("sim.events_executed").set_total(
      static_cast<double>(events_executed_));
  metrics.gauge("sim.events_pending").set(static_cast<double>(queue_.size()));
  metrics.gauge("sim.now_us").set(static_cast<double>(now_));
}

EventHandle Simulator::schedule_at(SimTime at, Callback cb) {
  assert(at >= now_ && "cannot schedule in the past");
  auto state = std::make_shared<bool>(false);
  queue_.push(Event{at, next_seq_++, std::move(cb), state});
  return EventHandle(std::move(state));
}

EventHandle Simulator::schedule_periodic(SimTime period, Callback cb) {
  assert(period > 0);
  // `stop` is the user-facing cancellation flag for the whole chain; each
  // individual firing is scheduled as a regular one-shot event (execute()
  // marks those fired via their own per-event flag, so the chain flag stays
  // under our control).
  auto stop = std::make_shared<bool>(false);
  schedule_tick(period, std::make_shared<Callback>(std::move(cb)), stop);
  return EventHandle(std::move(stop));
}

void Simulator::schedule_tick(SimTime period, std::shared_ptr<Callback> cb,
                              std::shared_ptr<bool> stop) {
  // Each firing schedules the next one; only the pending event holds the
  // callback and the stop flag, so cancelling (or draining the queue) frees
  // the chain — no self-referential closure.
  schedule_at(now_ + period,
              [this, period, cb = std::move(cb), stop = std::move(stop)]() {
                if (*stop) return;
                (*cb)();
                if (!*stop) schedule_tick(period, cb, stop);
              });
}

void Simulator::execute(Event& ev) {
  now_ = ev.at;
  if (*ev.cancelled) return;
  *ev.cancelled = true;  // mark fired so handles report !pending()
  ++events_executed_;
  ev.cb();
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  execute(ev);
  return true;
}

void Simulator::run_until(SimTime until) {
  while (!queue_.empty() && queue_.top().at <= until) {
    step();
  }
  if (now_ < until) now_ = until;
}

void Simulator::run_all() {
  while (step()) {
  }
}

}  // namespace sora
