// Workload generators (stand-in for the RUBBoS client).
//
// OpenLoopGenerator produces a non-homogeneous Poisson arrival process whose
// rate follows a WorkloadTrace (thinning sampler — exact). Request classes
// are drawn from a configurable mix that can change at runtime (the paper's
// "system state drifting" experiment flips light -> heavy mid-run).
//
// ClosedLoopGenerator models N concurrent users with exponential think
// times, the RUBBoS model the paper uses for its validation sweeps
// (goodput vs. "# Users").
#pragma once

#include <functional>
#include <vector>

#include "admission/request.h"
#include "common/rng.h"
#include "common/time.h"
#include "sim/simulator.h"
#include "workload/load_target.h"
#include "workload/traces.h"

namespace sora {

/// Probability mix over request classes.
class RequestMix {
 public:
  /// Single-class mix.
  explicit RequestMix(int request_class = 0);
  /// Weighted mix: {class, weight} pairs; weights need not sum to 1.
  RequestMix(std::initializer_list<std::pair<int, double>> weights);

  void set_weights(std::vector<std::pair<int, double>> weights);
  int sample(Rng& rng) const;

  /// Tag a request class with an admission priority (default: every class is
  /// kHigh). Returns *this for chaining.
  RequestMix& with_priority(int request_class, Priority priority);
  Priority priority_of(int request_class) const;

 private:
  std::vector<std::pair<int, double>> weights_;
  std::vector<std::pair<int, Priority>> priorities_;
  double total_ = 0.0;
};

/// Callback observing each completed request: (injection time, class, rt,
/// served). `ok == false` means admission control shed the request.
using CompletionObserver = std::function<void(SimTime injected_at,
                                              int request_class, SimTime rt,
                                              bool ok)>;

/// A pluggable load driver the harness can own alongside (or instead of)
/// its built-in generators. The harness binds the source once — before
/// start() — handing it the simulator, the injection target, a seed to
/// derive every internal RNG stream from, and the observer completions must
/// be reported through; everything downstream of the seam (latency
/// recording, SLO accounting, admission, faults) then composes unchanged.
/// ReplayWorkloadSource (workload/replay.h) is the cluster-trace
/// implementation.
class WorkloadSource {
 public:
  virtual ~WorkloadSource() = default;

  virtual void bind(Simulator& sim, LoadTarget& target, std::uint64_t seed,
                    CompletionObserver observer) = 0;
  /// Begin injecting at sim.now(); requires bind() first.
  virtual void start() = 0;
  virtual void stop() = 0;
  /// Requests injected so far (across the source's internal streams).
  virtual std::uint64_t injected() const = 0;
  virtual const char* name() const = 0;
};

class OpenLoopGenerator {
 public:
  OpenLoopGenerator(Simulator& sim, LoadTarget& target, WorkloadTrace trace,
                    std::uint64_t seed);

  /// Begin injecting at sim.now(); stops after the trace duration.
  void start();
  /// Stop early.
  void stop();

  void set_mix(RequestMix mix) { mix_ = std::move(mix); }
  /// Change the class mix at a future point (state-drift experiments).
  void schedule_mix_change(SimTime at, RequestMix mix);

  void set_observer(CompletionObserver obs) { observer_ = std::move(obs); }

  std::uint64_t injected() const { return injected_; }
  const WorkloadTrace& trace() const { return trace_; }

 private:
  void schedule_next();

  Simulator& sim_;
  LoadTarget& target_;
  WorkloadTrace trace_;
  Rng rng_;
  RequestMix mix_;
  CompletionObserver observer_;
  SimTime start_time_ = 0;
  bool running_ = false;
  std::uint64_t injected_ = 0;
  EventHandle next_;
};

class ClosedLoopGenerator {
 public:
  /// `think_time_mean` is the exponential think time between a user's
  /// response and their next request.
  ClosedLoopGenerator(Simulator& sim, LoadTarget& target, int num_users,
                      SimTime think_time_mean, std::uint64_t seed);

  void start();
  void stop();

  /// Adjust the user population at runtime. Growing spawns users
  /// immediately; shrinking retires users as they finish their think/req.
  void set_users(int num_users);
  int users() const { return target_users_; }

  /// Follow a workload trace: every `update_period` the user population is
  /// set to the trace value at the current time (trace "rates" read as user
  /// counts). This is the RUBBoS-style closed-loop mode the paper drives
  /// its bursty-trace experiments with. Stops updating (and retires all
  /// users) after the trace duration.
  void follow_trace(const WorkloadTrace& trace, SimTime update_period = sec(1));

  void set_mix(RequestMix mix) { mix_ = std::move(mix); }
  void set_observer(CompletionObserver obs) { observer_ = std::move(obs); }

  std::uint64_t injected() const { return injected_; }

 private:
  void spawn_user();
  void user_loop();

  Simulator& sim_;
  LoadTarget& target_;
  int target_users_;
  SimTime think_mean_;
  Rng rng_;
  RequestMix mix_;
  CompletionObserver observer_;
  bool running_ = false;
  int live_users_ = 0;
  std::uint64_t injected_ = 0;
  EventHandle trace_tick_;
};

}  // namespace sora
