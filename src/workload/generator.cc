#include "workload/generator.h"

#include <cassert>

namespace sora {

RequestMix::RequestMix(int request_class) {
  weights_.emplace_back(request_class, 1.0);
  total_ = 1.0;
}

RequestMix::RequestMix(std::initializer_list<std::pair<int, double>> weights) {
  set_weights(std::vector<std::pair<int, double>>(weights));
}

void RequestMix::set_weights(std::vector<std::pair<int, double>> weights) {
  assert(!weights.empty());
  weights_ = std::move(weights);
  total_ = 0.0;
  for (const auto& [cls, w] : weights_) {
    assert(w >= 0.0);
    total_ += w;
  }
  assert(total_ > 0.0);
}

RequestMix& RequestMix::with_priority(int request_class, Priority priority) {
  for (auto& [cls, p] : priorities_) {
    if (cls == request_class) {
      p = priority;
      return *this;
    }
  }
  priorities_.emplace_back(request_class, priority);
  return *this;
}

Priority RequestMix::priority_of(int request_class) const {
  for (const auto& [cls, p] : priorities_) {
    if (cls == request_class) return p;
  }
  return Priority::kHigh;
}

int RequestMix::sample(Rng& rng) const {
  if (weights_.size() == 1) return weights_.front().first;
  double u = rng.uniform() * total_;
  for (const auto& [cls, w] : weights_) {
    u -= w;
    if (u <= 0.0) return cls;
  }
  return weights_.back().first;
}

// ---------------------------------------------------------------------------
// OpenLoopGenerator: thinning sampler for a non-homogeneous Poisson process.
// ---------------------------------------------------------------------------

OpenLoopGenerator::OpenLoopGenerator(Simulator& sim, LoadTarget& target,
                                     WorkloadTrace trace, std::uint64_t seed)
    : sim_(sim), target_(target), trace_(trace), rng_(seed) {}

void OpenLoopGenerator::start() {
  assert(!running_);
  running_ = true;
  start_time_ = sim_.now();
  schedule_next();
}

void OpenLoopGenerator::stop() {
  running_ = false;
  next_.cancel();
}

void OpenLoopGenerator::schedule_mix_change(SimTime at, RequestMix mix) {
  sim_.schedule_at(at, [this, mix = std::move(mix)]() mutable {
    mix_ = std::move(mix);
  });
}

void OpenLoopGenerator::schedule_next() {
  if (!running_) return;
  const double lambda_max = trace_.max_rate();
  assert(lambda_max > 0.0);
  // Thinning: propose candidate arrivals at the peak rate; accept each with
  // probability rate(t)/lambda_max. Exact for rate(t) <= lambda_max.
  SimTime t = sim_.now();
  for (;;) {
    const double gap_sec = rng_.exponential(1.0 / lambda_max);
    t += std::max<SimTime>(1, sec_f(gap_sec));
    if (t - start_time_ > trace_.duration()) {
      running_ = false;
      return;
    }
    const double accept = trace_.rate_at(t - start_time_) / lambda_max;
    if (rng_.uniform() < accept) break;
  }
  next_ = sim_.schedule_at(t, [this] {
    const int cls = mix_.sample(rng_);
    const SimTime injected_at = sim_.now();
    ++injected_;
    RequestMeta meta;
    meta.request_class = cls;
    meta.priority = mix_.priority_of(cls);
    target_.inject(meta, [this, injected_at, cls](SimTime rt, bool ok) {
      if (observer_) observer_(injected_at, cls, rt, ok);
    });
    schedule_next();
  });
}

// ---------------------------------------------------------------------------
// ClosedLoopGenerator
// ---------------------------------------------------------------------------

ClosedLoopGenerator::ClosedLoopGenerator(Simulator& sim, LoadTarget& target,
                                         int num_users, SimTime think_time_mean,
                                         std::uint64_t seed)
    : sim_(sim),
      target_(target),
      target_users_(num_users),
      think_mean_(think_time_mean),
      rng_(seed) {}

void ClosedLoopGenerator::start() {
  assert(!running_);
  running_ = true;
  while (live_users_ < target_users_) spawn_user();
}

void ClosedLoopGenerator::stop() {
  running_ = false;
  trace_tick_.cancel();
}

void ClosedLoopGenerator::follow_trace(const WorkloadTrace& trace,
                                       SimTime update_period) {
  const SimTime start = sim_.now();
  trace_tick_ = sim_.schedule_periodic(update_period, [this, trace, start] {
    const SimTime elapsed = sim_.now() - start;
    if (elapsed > trace.duration()) {
      trace_tick_.cancel();
      set_users(0);
      return;
    }
    set_users(static_cast<int>(trace.rate_at(elapsed)));
  });
  set_users(static_cast<int>(trace.rate_at(0)));
}

void ClosedLoopGenerator::set_users(int num_users) {
  target_users_ = num_users;
  if (!running_) return;
  while (live_users_ < target_users_) spawn_user();
  // Excess users retire inside user_loop when they notice the new target.
}

void ClosedLoopGenerator::spawn_user() {
  ++live_users_;
  // Stagger initial arrivals with a random fraction of a think time so the
  // population does not fire in lockstep.
  const SimTime stagger =
      static_cast<SimTime>(rng_.uniform() * static_cast<double>(think_mean_));
  sim_.schedule_after(stagger, [this] { user_loop(); });
}

void ClosedLoopGenerator::user_loop() {
  if (!running_ || live_users_ > target_users_) {
    --live_users_;
    return;
  }
  const int cls = mix_.sample(rng_);
  const SimTime injected_at = sim_.now();
  ++injected_;
  RequestMeta meta;
  meta.request_class = cls;
  meta.priority = mix_.priority_of(cls);
  target_.inject(meta, [this, injected_at, cls](SimTime rt, bool ok) {
    if (observer_) observer_(injected_at, cls, rt, ok);
    const SimTime think = static_cast<SimTime>(
        rng_.exponential(static_cast<double>(think_mean_)));
    sim_.schedule_after(std::max<SimTime>(1, think), [this] { user_loop(); });
  });
}

}  // namespace sora
