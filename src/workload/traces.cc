#include "workload/traces.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace sora {

const std::vector<TraceShape>& all_trace_shapes() {
  static const std::vector<TraceShape> kShapes = {
      TraceShape::kLargeVariation, TraceShape::kQuickVarying,
      TraceShape::kSlowlyVarying,  TraceShape::kBigSpike,
      TraceShape::kDualPhase,      TraceShape::kSteepTriPhase,
  };
  return kShapes;
}

const char* to_string(TraceShape shape) {
  switch (shape) {
    case TraceShape::kLargeVariation:
      return "Large Variation";
    case TraceShape::kQuickVarying:
      return "Quick Varying";
    case TraceShape::kSlowlyVarying:
      return "Slowly Varying";
    case TraceShape::kBigSpike:
      return "Big Spike";
    case TraceShape::kDualPhase:
      return "Dual Phase";
    case TraceShape::kSteepTriPhase:
      return "Steep Tri Phase";
    case TraceShape::kReplay:
      return "Replay";
  }
  return "?";
}

namespace {

constexpr double kPi = 3.14159265358979323846;

double clamp01(double v) { return std::clamp(v, 0.0, 1.0); }

/// Smoothstep between plateaus for steep-but-continuous transitions.
double smooth_step(double t, double edge0, double edge1) {
  if (edge1 <= edge0) return t < edge0 ? 0.0 : 1.0;
  const double x = clamp01((t - edge0) / (edge1 - edge0));
  return x * x * (3.0 - 2.0 * x);
}

}  // namespace

double trace_intensity(TraceShape shape, double t) {
  t = clamp01(t);
  switch (shape) {
    case TraceShape::kLargeVariation: {
      // Big-amplitude oscillation with two pronounced crests of different
      // height plus a slow drift.
      const double slow = 0.5 + 0.5 * std::sin(2.0 * kPi * (t * 1.5 - 0.25));
      const double fast = 0.2 * std::sin(2.0 * kPi * t * 4.0);
      return clamp01(0.15 + 0.75 * slow + fast);
    }
    case TraceShape::kQuickVarying: {
      // Rapid oscillations: period ~1/8 of the trace.
      const double osc = 0.5 + 0.5 * std::sin(2.0 * kPi * t * 8.0);
      const double env = 0.75 + 0.25 * std::sin(2.0 * kPi * t);
      return clamp01(0.2 + 0.8 * osc * env);
    }
    case TraceShape::kSlowlyVarying: {
      // One slow hump.
      return clamp01(0.2 + 0.8 * std::pow(std::sin(kPi * t), 2.0));
    }
    case TraceShape::kBigSpike: {
      // Modest baseline with a single sharp spike around t = 0.55.
      const double base = 0.25 + 0.08 * std::sin(2.0 * kPi * t * 2.0);
      const double spike = std::exp(-std::pow((t - 0.55) / 0.035, 2.0));
      return clamp01(base + 0.75 * spike);
    }
    case TraceShape::kDualPhase: {
      // Low plateau, then a sustained high plateau in the second half.
      const double up = smooth_step(t, 0.45, 0.52);
      const double down = 1.0 - smooth_step(t, 0.9, 0.97);
      return clamp01(0.3 + 0.7 * up * down +
                     0.05 * std::sin(2.0 * kPi * t * 6.0));
    }
    case TraceShape::kSteepTriPhase: {
      // Three phases with steep ramps: low -> high -> medium-high, matching
      // the overload episodes the paper reports around 300s and 520s of a
      // 720s run (normalized ~0.42 and ~0.72).
      const double p1 = smooth_step(t, 0.36, 0.42) *
                        (1.0 - smooth_step(t, 0.52, 0.58));
      const double p2 = smooth_step(t, 0.66, 0.72) *
                        (1.0 - smooth_step(t, 0.84, 0.9));
      return clamp01(0.28 + 0.72 * p1 + 0.62 * p2 +
                     0.04 * std::sin(2.0 * kPi * t * 5.0));
    }
    case TraceShape::kReplay:
      // Replay traces carry their own sample curve; there is no normalized
      // analytic intensity to evaluate.
      return 0.0;
  }
  return 0.0;
}

WorkloadTrace::WorkloadTrace(TraceShape shape, SimTime duration,
                             double base_rate_rps, double peak_rate_rps)
    : shape_(shape),
      duration_(duration),
      base_(base_rate_rps),
      peak_(peak_rate_rps) {}

WorkloadTrace WorkloadTrace::piecewise(
    std::vector<std::pair<SimTime, double>> samples) {
  assert(samples.size() >= 2 && "piecewise trace needs at least two samples");
  double lo = samples.front().second;
  double hi = samples.front().second;
  for (const auto& [t, r] : samples) {
    lo = std::min(lo, r);
    hi = std::max(hi, r);
  }
  WorkloadTrace trace(TraceShape::kReplay, samples.back().first, lo, hi);
  trace.curve_ = std::make_shared<
      const std::vector<std::pair<SimTime, double>>>(std::move(samples));
  return trace;
}

double WorkloadTrace::rate_at(SimTime t) const {
  if (shape_ == TraceShape::kReplay) {
    const auto& c = *curve_;
    if (t <= c.front().first) return c.front().second;
    if (t >= c.back().first) return c.back().second;
    // First sample strictly past t; its predecessor starts the segment.
    const auto it = std::upper_bound(
        c.begin(), c.end(), t,
        [](SimTime lhs, const std::pair<SimTime, double>& s) {
          return lhs < s.first;
        });
    const auto& [t1, r1] = *it;
    const auto& [t0, r0] = *(it - 1);
    const double frac = static_cast<double>(t - t0) /
                        static_cast<double>(t1 - t0);
    return r0 + (r1 - r0) * frac;
  }
  const double x = duration_ > 0
                       ? static_cast<double>(std::clamp<SimTime>(t, 0, duration_)) /
                             static_cast<double>(duration_)
                       : 0.0;
  return base_ + (peak_ - base_) * trace_intensity(shape_, x);
}

}  // namespace sora
