// Cluster-trace replay: CSV rate curves driving the thinning generator.
//
// Ingests Alibaba-cluster-trace-style CSV files — a time column plus one
// requests/second column per tenant — and replays each tenant column as a
// piecewise-linear WorkloadTrace through its own OpenLoopGenerator, so the
// exact thinning sampler, request mixes, priorities and the admission path
// all compose unchanged. Parsing fails closed: a malformed file (missing
// columns, non-monotone timestamps, negative or non-finite rates, ragged
// rows) yields an error, never a silently truncated workload.
//
// synthesize_cluster_trace_csv emits a deterministic trace in the same
// format — diurnal baseline, seeded flash-crowd spikes and a fast
// interference overlay per tenant — so benches and CI don't need trace
// files on disk.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "workload/generator.h"

namespace sora {

/// A parsed multi-tenant rate trace: times[i] is row i's timestamp,
/// rows[i][c] the rate of tenant column c at that time.
struct ClusterTrace {
  std::vector<std::string> tenants;
  std::vector<SimTime> times;
  std::vector<std::vector<double>> rows;

  SimTime duration() const { return times.empty() ? 0 : times.back(); }
  /// Tenant column c as a replayable piecewise trace, rates scaled by
  /// `rate_scale`.
  WorkloadTrace tenant_trace(std::size_t c, double rate_scale = 1.0) const;
};

struct ClusterTraceParse {
  bool ok = false;
  std::string error;  ///< empty iff ok
  ClusterTrace trace;
};

/// Parse a cluster-trace CSV. Requirements (all fail closed):
///   - header `time_s,<tenant>,...` with at least one tenant column,
///     every tenant name non-empty and unique;
///   - at least two data rows, every row with the header's column count;
///   - timestamps finite, non-negative seconds, strictly increasing;
///   - rates finite and non-negative.
ClusterTraceParse parse_cluster_trace_csv(std::istream& in);
ClusterTraceParse parse_cluster_trace_csv(const std::string& text);

/// Knobs of the deterministic trace synthesizer. Per tenant: a diurnal
/// sinusoid baseline, `flash_crowds` Gaussian spikes at seeded times, and a
/// small high-frequency interference overlay (a neighbour's noise bleeding
/// into the rate signal). Tenant phases are seeded too, so peaks don't
/// align across tenants.
struct ReplaySynthesisConfig {
  std::uint64_t seed = 7;
  int tenants = 4;
  double duration_s = 600.0;
  double step_s = 5.0;           ///< sample spacing
  double base_rps = 120.0;       ///< diurnal mean per tenant
  double diurnal_amplitude = 0.35;   ///< fraction of base
  double diurnal_period_s = 300.0;
  int flash_crowds = 2;          ///< spikes per tenant
  double flash_peak = 2.5;       ///< spike height, fraction of base
  double flash_width_s = 25.0;   ///< spike sigma
  double interference_amplitude = 0.08;  ///< fraction of base
};

/// Emit a synthetic cluster trace as CSV text (fixed precision: output is
/// byte-stable across platforms for the same config).
std::string synthesize_cluster_trace_csv(const ReplaySynthesisConfig& cfg);

/// WorkloadSource replaying a ClusterTrace: one OpenLoopGenerator per
/// tenant column, each with its own seed stream (salted from the bind seed
/// by column index) and its own RequestMix.
class ReplayWorkloadSource : public WorkloadSource {
 public:
  explicit ReplayWorkloadSource(ClusterTrace trace, double rate_scale = 1.0);

  /// Mix injected for tenant column `c` (default: single-class 0).
  /// Call before bind().
  void set_tenant_mix(std::size_t c, RequestMix mix);

  void bind(Simulator& sim, LoadTarget& target, std::uint64_t seed,
            CompletionObserver observer) override;
  void start() override;
  void stop() override;
  std::uint64_t injected() const override;
  const char* name() const override { return "cluster-trace-replay"; }

  const ClusterTrace& trace() const { return trace_; }
  /// Per-tenant generators; valid after bind().
  const std::vector<std::unique_ptr<OpenLoopGenerator>>& generators() const {
    return generators_;
  }

 private:
  ClusterTrace trace_;
  double rate_scale_;
  std::vector<RequestMix> mixes_;
  std::vector<std::unique_ptr<OpenLoopGenerator>> generators_;
};

}  // namespace sora
