// Real-world bursty workload trace shapes.
//
// The paper evaluates under six bursty traces from Gandhi et al.'s
// AutoScale work (reference [17]): Large Variation, Quick Varying, Slowly
// Varying, Big Spike, Dual Phase and Steep Tri Phase. Only the shapes are
// named in the paper, so we synthesize each as a normalized rate curve
// f: [0,1] -> [0,1] with the corresponding morphology; a WorkloadTrace maps
// it onto an absolute request rate over a configured duration.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/time.h"

namespace sora {

enum class TraceShape {
  kLargeVariation,
  kQuickVarying,
  kSlowlyVarying,
  kBigSpike,
  kDualPhase,
  kSteepTriPhase,
  /// Piecewise-linear curve from recorded samples (WorkloadTrace::piecewise)
  /// rather than an analytic shape; trace_intensity has no meaning for it.
  kReplay,
};

/// All six shapes, in the order the paper's Table 2 lists them.
const std::vector<TraceShape>& all_trace_shapes();

const char* to_string(TraceShape shape);

/// Normalized intensity of `shape` at normalized time t in [0,1].
/// Always within [0,1]; deterministic and smooth-ish (burstiness beyond the
/// macro shape comes from Poisson arrivals).
double trace_intensity(TraceShape shape, double t);

/// A trace shape bound to absolute time and request rates.
class WorkloadTrace {
 public:
  WorkloadTrace(TraceShape shape, SimTime duration, double base_rate_rps,
                double peak_rate_rps);

  /// A replayed rate curve: piecewise-linear interpolation through
  /// (time, rps) samples with strictly increasing times (at least two).
  /// Before the first / after the last sample the curve clamps to the edge
  /// value; max_rate() is the largest sample, which keeps the thinning
  /// sampler exact. The curve is shared, so copies (the generator holds its
  /// trace by value) stay cheap at cluster-trace lengths.
  static WorkloadTrace piecewise(
      std::vector<std::pair<SimTime, double>> samples);

  /// Arrival rate (requests/second) at absolute sim time `t`; clamps t into
  /// [0, duration].
  double rate_at(SimTime t) const;

  /// Upper bound on rate_at over the whole trace (for thinning samplers).
  double max_rate() const { return peak_; }

  TraceShape shape() const { return shape_; }
  SimTime duration() const { return duration_; }
  double base_rate() const { return base_; }
  double peak_rate() const { return peak_; }

 private:
  TraceShape shape_;
  SimTime duration_;
  double base_;
  double peak_;
  /// Sample curve for kReplay traces; null for analytic shapes.
  std::shared_ptr<const std::vector<std::pair<SimTime, double>>> curve_;
};

}  // namespace sora
