// Interface between workload generators and the system under test.
#pragma once

#include <functional>
#include <utility>

#include "admission/request.h"
#include "common/time.h"

namespace sora {

/// Anything that can accept end-user requests. Implemented by Application.
class LoadTarget {
 public:
  /// Completion callback: end-to-end response time plus whether the request
  /// was actually served (`ok == false` means it was shed by admission
  /// control — the "response" is a fast rejection).
  using Completion = std::function<void(SimTime response_time, bool ok)>;

  virtual ~LoadTarget() = default;

  /// Submit one request described by `meta`; `on_complete` fires when the
  /// response (or rejection) leaves the system.
  virtual void inject(const RequestMeta& meta, Completion on_complete) = 0;

  /// Convenience: class-only injection (high priority, no deadline), with
  /// the legacy served-response callback.
  void inject(int request_class, std::function<void(SimTime)> on_complete) {
    RequestMeta meta;
    meta.request_class = request_class;
    inject(meta, [cb = std::move(on_complete)](SimTime rt, bool) { cb(rt); });
  }
};

}  // namespace sora
