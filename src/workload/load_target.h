// Interface between workload generators and the system under test.
#pragma once

#include <functional>

#include "common/time.h"

namespace sora {

/// Anything that can accept end-user requests. Implemented by Application.
class LoadTarget {
 public:
  virtual ~LoadTarget() = default;

  /// Submit one request of `request_class`; `on_complete` fires with the
  /// end-to-end response time.
  virtual void inject(int request_class,
                      std::function<void(SimTime response_time)> on_complete) = 0;
};

}  // namespace sora
