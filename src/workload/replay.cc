#include "workload/replay.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>
#include <sstream>

#include "common/rng.h"

namespace sora {

namespace {

constexpr double kPi = 3.14159265358979323846;

/// Split one CSV line on commas (no quoting — rate traces are plain
/// numeric tables). Trailing \r from CRLF files is stripped.
std::vector<std::string> split_csv(std::string line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t comma = line.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(line.substr(start));
      return out;
    }
    out.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
}

bool parse_double(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) return false;
  if (!std::isfinite(v)) return false;
  *out = v;
  return true;
}

ClusterTraceParse fail(std::string error) {
  ClusterTraceParse r;
  r.error = std::move(error);
  return r;
}

}  // namespace

WorkloadTrace ClusterTrace::tenant_trace(std::size_t c,
                                         double rate_scale) const {
  std::vector<std::pair<SimTime, double>> samples;
  samples.reserve(times.size());
  for (std::size_t i = 0; i < times.size(); ++i) {
    samples.emplace_back(times[i], rows[i][c] * rate_scale);
  }
  return WorkloadTrace::piecewise(std::move(samples));
}

ClusterTraceParse parse_cluster_trace_csv(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) return fail("empty input");
  const std::vector<std::string> header = split_csv(std::move(line));
  if (header.empty() || header[0] != "time_s") {
    return fail("first column must be time_s");
  }
  if (header.size() < 2) return fail("no tenant columns");
  std::set<std::string> seen;
  for (std::size_t c = 1; c < header.size(); ++c) {
    if (header[c].empty()) return fail("empty tenant column name");
    if (!seen.insert(header[c]).second) {
      return fail("duplicate tenant column: " + header[c]);
    }
  }

  ClusterTraceParse result;
  ClusterTrace& trace = result.trace;
  trace.tenants.assign(header.begin() + 1, header.end());
  std::size_t row_no = 1;
  while (std::getline(in, line)) {
    ++row_no;
    if (line.empty() || line == "\r") continue;
    const std::vector<std::string> cells = split_csv(std::move(line));
    const std::string where = "row " + std::to_string(row_no);
    if (cells.size() != header.size()) {
      return fail(where + ": expected " + std::to_string(header.size()) +
                  " columns, got " + std::to_string(cells.size()));
    }
    double t_s = 0.0;
    if (!parse_double(cells[0], &t_s) || t_s < 0.0) {
      return fail(where + ": bad timestamp \"" + cells[0] + "\"");
    }
    const auto t = static_cast<SimTime>(std::llround(t_s * 1e6));
    if (!trace.times.empty() && t <= trace.times.back()) {
      return fail(where + ": timestamps must be strictly increasing");
    }
    std::vector<double> rates(cells.size() - 1);
    for (std::size_t c = 1; c < cells.size(); ++c) {
      double r = 0.0;
      if (!parse_double(cells[c], &r) || r < 0.0) {
        return fail(where + ": bad rate \"" + cells[c] + "\" for tenant " +
                    trace.tenants[c - 1]);
      }
      rates[c - 1] = r;
    }
    trace.times.push_back(t);
    trace.rows.push_back(std::move(rates));
  }
  if (trace.times.size() < 2) {
    return fail("need at least two data rows, got " +
                std::to_string(trace.times.size()));
  }
  result.ok = true;
  return result;
}

ClusterTraceParse parse_cluster_trace_csv(const std::string& text) {
  std::istringstream in(text);
  return parse_cluster_trace_csv(in);
}

std::string synthesize_cluster_trace_csv(const ReplaySynthesisConfig& cfg) {
  Rng rng(cfg.seed);
  struct TenantParams {
    double diurnal_phase;
    double interference_phase;
    double interference_period_s;
    std::vector<double> flash_at_s;
    std::vector<double> flash_height;  // fraction of base
  };
  // All randomness is drawn up front in tenant order, so the sample loop
  // below is a pure function of these parameters.
  std::vector<TenantParams> tenants;
  for (int t = 0; t < cfg.tenants; ++t) {
    TenantParams p;
    p.diurnal_phase = rng.uniform(0.0, 2.0 * kPi);
    p.interference_phase = rng.uniform(0.0, 2.0 * kPi);
    p.interference_period_s = rng.uniform(20.0, 45.0);
    for (int f = 0; f < cfg.flash_crowds; ++f) {
      p.flash_at_s.push_back(rng.uniform(0.15, 0.9) * cfg.duration_s);
      p.flash_height.push_back(cfg.flash_peak * rng.uniform(0.7, 1.3));
    }
    tenants.push_back(std::move(p));
  }

  std::string out = "time_s";
  for (int t = 0; t < cfg.tenants; ++t) {
    out += ",tenant" + std::to_string(t);
  }
  out += "\n";
  char buf[64];
  for (double t_s = 0.0; t_s <= cfg.duration_s + 1e-9; t_s += cfg.step_s) {
    std::snprintf(buf, sizeof(buf), "%.3f", t_s);
    out += buf;
    for (const TenantParams& p : tenants) {
      const double diurnal =
          1.0 + cfg.diurnal_amplitude *
                    std::sin(2.0 * kPi * t_s / cfg.diurnal_period_s +
                             p.diurnal_phase);
      double flash = 0.0;
      for (std::size_t f = 0; f < p.flash_at_s.size(); ++f) {
        const double d = (t_s - p.flash_at_s[f]) / cfg.flash_width_s;
        flash += p.flash_height[f] * std::exp(-d * d);
      }
      const double interference =
          cfg.interference_amplitude *
          std::sin(2.0 * kPi * t_s / p.interference_period_s +
                   p.interference_phase);
      const double rate =
          std::max(0.0, cfg.base_rps * (diurnal + flash + interference));
      std::snprintf(buf, sizeof(buf), ",%.3f", rate);
      out += buf;
    }
    out += "\n";
  }
  return out;
}

ReplayWorkloadSource::ReplayWorkloadSource(ClusterTrace trace,
                                           double rate_scale)
    : trace_(std::move(trace)),
      rate_scale_(rate_scale),
      mixes_(trace_.tenants.size(), RequestMix(0)) {}

void ReplayWorkloadSource::set_tenant_mix(std::size_t c, RequestMix mix) {
  mixes_.at(c) = std::move(mix);
}

void ReplayWorkloadSource::bind(Simulator& sim, LoadTarget& target,
                                std::uint64_t seed,
                                CompletionObserver observer) {
  generators_.clear();
  for (std::size_t c = 0; c < trace_.tenants.size(); ++c) {
    auto gen = std::make_unique<OpenLoopGenerator>(
        sim, target, trace_.tenant_trace(c, rate_scale_),
        seed ^ (0xc2b2ae3d27d4eb4fULL + c));
    gen->set_mix(mixes_[c]);
    gen->set_observer(observer);
    generators_.push_back(std::move(gen));
  }
}

void ReplayWorkloadSource::start() {
  for (auto& gen : generators_) gen->start();
}

void ReplayWorkloadSource::stop() {
  for (auto& gen : generators_) gen->stop();
}

std::uint64_t ReplayWorkloadSource::injected() const {
  std::uint64_t total = 0;
  for (const auto& gen : generators_) total += gen->injected();
  return total;
}

}  // namespace sora
