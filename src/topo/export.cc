#include "topo/export.h"

#include <ostream>

namespace sora::topo {

namespace {

const char* tier_of(const Topology& topo, std::size_t i) {
  if (topo.tenant_of[i] >= 0) return topo.depth[i] == 0 ? "entry" : "mid";
  const std::string& name = topo.app.services[i].name;
  if (name.rfind("db", 0) == 0) return "db";
  if (name.rfind("cache", 0) == 0) return "cache";
  return "blob";
}

}  // namespace

void write_json(std::ostream& os, const Topology& topo, int shards) {
  sim::PartitionResult part;
  if (shards > 1) {
    part = sim::partition_service_graph(topo.partition_nodes(),
                                        topo.partition_edges(), shards);
  }
  os << "{\n";
  os << "  \"seed\": " << topo.config.seed << ",\n";
  os << "  \"services\": " << topo.app.services.size() << ",\n";
  os << "  \"tenants\": " << topo.config.tenants << ",\n";
  os << "  \"callback_class\": " << topo.callback_class << ",\n";
  if (shards > 1) {
    os << "  \"shards\": " << shards << ",\n";
    os << "  \"partition_ok\": " << (part.ok ? "true" : "false") << ",\n";
    if (part.ok) {
      os << "  \"lookahead_us\": " << part.lookahead << ",\n";
    } else {
      os << "  \"partition_reason\": \"" << part.reason << "\",\n";
    }
  }
  os << "  \"entry_classes\": {";
  bool first = true;
  for (const auto& [cls, name] : topo.app.entry_service) {
    os << (first ? "" : ", ") << "\"" << cls << "\": \"" << name << "\"";
    first = false;
  }
  os << "},\n";
  os << "  \"nodes\": [\n";
  for (std::size_t i = 0; i < topo.app.services.size(); ++i) {
    const ServiceConfig& s = topo.app.services[i];
    os << "    {\"id\": " << i << ", \"name\": \"" << s.name
       << "\", \"tier\": \"" << tier_of(topo, i)
       << "\", \"tenant\": " << topo.tenant_of[i]
       << ", \"depth\": " << topo.depth[i] << ", \"cores\": " << s.cores
       << ", \"replicas\": " << s.initial_replicas;
    if (!part.assignment.empty()) {
      os << ", \"shard\": " << part.assignment[i];
    }
    os << "}" << (i + 1 < topo.app.services.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  os << "  \"edges\": [\n";
  for (std::size_t i = 0; i < topo.edges.size(); ++i) {
    const TopologyEdge& e = topo.edges[i];
    os << "    {\"from\": " << e.from << ", \"to\": " << e.to
       << ", \"async\": " << (e.async ? "true" : "false") << "}"
       << (i + 1 < topo.edges.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";
}

void write_dot(std::ostream& os, const Topology& topo) {
  os << "digraph topology {\n  rankdir=LR;\n  node [shape=box];\n";
  for (int t = 0; t < topo.config.tenants; ++t) {
    os << "  subgraph cluster_t" << t << " {\n    label=\""
       << topo.tenant_names[static_cast<std::size_t>(t)] << "\";\n";
    for (std::size_t i = 0; i < topo.app.services.size(); ++i) {
      if (topo.tenant_of[i] != t) continue;
      os << "    \"" << topo.app.services[i].name << "\"";
      if (topo.depth[i] == 0) os << " [shape=doubleoctagon]";
      os << ";\n";
    }
    os << "  }\n";
  }
  for (std::size_t i = 0; i < topo.app.services.size(); ++i) {
    if (topo.tenant_of[i] >= 0) continue;
    os << "  \"" << topo.app.services[i].name << "\" [shape=cylinder];\n";
  }
  for (const TopologyEdge& e : topo.edges) {
    os << "  \"" << topo.app.services[static_cast<std::size_t>(e.from)].name
       << "\" -> \""
       << topo.app.services[static_cast<std::size_t>(e.to)].name << "\"";
    if (e.async) os << " [style=dashed, color=gray]";
    os << ";\n";
  }
  os << "}\n";
}

void write_stats(std::ostream& os, const Topology& topo) {
  const TopologyStats s = topo.stats();
  os << "services: " << s.services << " (entries " << s.entries << ", mid "
     << s.mid_services << ", shared " << s.shared_services << ")\n";
  os << "tenants: " << s.tenants << " (classes/tenant "
     << topo.classes_per_tenant << ")\n";
  os << "edges: " << s.sync_edges << " sync, " << s.async_edges << " async\n";
  os << "depth histogram:";
  for (std::size_t d = 0; d < s.depth_histogram.size(); ++d) {
    os << " " << d << ":" << s.depth_histogram[d];
  }
  os << "\n";
  os << "fanout: mean " << s.fanout_mean << ", p99 " << s.fanout_p99
     << ", max " << s.fanout_max << "\n";
  os << "shared in-degree: mean " << s.shared_in_degree_mean << ", max "
     << s.shared_in_degree_max << "\n";
}

}  // namespace sora::topo
