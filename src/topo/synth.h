// Planet-scale topology synthesizer.
//
// Generates realistic 500-5000-service call graphs from a seeded
// TopologyConfig: per-tenant layered DAGs whose fan-out is drawn from a
// heavy-tailed (truncated power-law) distribution, shared backend tiers
// (db/cache/blob pools referenced by many frontends through Zipf
// popularity, producing heavy-tailed in-degree), multiple entry services
// per tenant (one request class per entry), and cross-service cycles
// expressed as async callback edges (svc/config.h AsyncCallback) back to
// an ancestor on the synchronous path. The output is a ready-to-run
// svc::ApplicationConfig plus a partition-friendly edge list; the same
// config + seed always produces a byte-identical topology (single Rng,
// fixed draw order, no unordered containers). DESIGN.md §14.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.h"
#include "sim/partition.h"
#include "svc/config.h"
#include "workload/generator.h"

namespace sora::topo {

struct TopologyConfig {
  std::uint64_t seed = 1;
  /// Total service budget: entries + mid tiers + shared backends.
  int services = 1000;
  int tenants = 4;
  /// Entry (front-end) services per tenant; each is the entry of its own
  /// request class, so one tenant spreads over several front doors.
  int entries_per_tenant = 2;
  /// Shared backend tier sizes; 0 = auto-scale with the service count.
  int shared_db = 0;
  int shared_cache = 0;
  int shared_blob = 0;
  /// Maximum mid-tier depth below the entries (levels 1..max_depth).
  int max_depth = 6;
  /// Heavy-tailed fan-out. Each mid attaches to ONE parent in the level
  /// above by preferential attachment; a parent's base attractiveness is
  /// drawn from P(k) ∝ k^-alpha on k in [1, fanout_max] and grows with each
  /// child it wins (Yule process), so out-degrees come out power-law
  /// without multiplying per-request executions the way "sample k callees
  /// per caller" wiring would.
  double fanout_alpha = 2.2;
  int fanout_max = 8;
  /// Chance a mid gains a second parent (a cross-link). Each extra parent
  /// multiplies the subtree's per-request executions, so this is kept
  /// sparse: expected execution multiplicity ≈ (1 + p)^depth.
  double cross_link_prob = 0.12;
  /// Chance a multi-call hop issues its calls as one parallel group
  /// (otherwise sequentially).
  double parallel_prob = 0.5;
  /// Chance a mid-tier service also calls into a shared backend tier.
  double shared_tier_prob = 0.6;
  /// Zipf exponent for shared-tier instance popularity (in-degree skew).
  double shared_zipf_s = 1.2;
  /// Fraction of deep mid services gaining an async callback edge to an
  /// ancestor on their own synchronous path (a directed cycle).
  double async_cycle_fraction = 0.04;
  /// Trailing fraction of tenants whose traffic runs at batch priority
  /// (multi-tenant interference through the admission path).
  double batch_tenant_fraction = 0.25;
  SimTime network_latency = usec(500);
  SimTime request_sla = msec(500);
  /// Multiplier on every sampled CPU demand.
  double demand_scale = 1.0;
  // -- pool sizing (per replica) -----------------------------------------
  int entry_pool = 64;         ///< entry services
  int mid_entry_pool = 32;     ///< mid-tier services
  int shared_entry_pool = 128; ///< shared backends
  int edge_pool = 32;          ///< caller connection pools toward shared dbs
};

/// One call edge between synthesized services (indices into app.services).
struct TopologyEdge {
  int from = 0;
  int to = 0;
  bool async = false;
};

struct TopologyStats {
  int services = 0;
  int tenants = 0;
  int entries = 0;
  int mid_services = 0;
  int shared_services = 0;
  int sync_edges = 0;
  int async_edges = 0;
  /// Histogram over service depth: index = depth (entries at 0, shared
  /// backends one past the deepest mid level).
  std::vector<int> depth_histogram;
  /// Synchronous out-degree distribution.
  double fanout_mean = 0.0;
  int fanout_p99 = 0;
  int fanout_max = 0;
  /// Synchronous in-degree over the shared backends (tier popularity).
  double shared_in_degree_mean = 0.0;
  int shared_in_degree_max = 0;
};

/// A synthesized topology: the runnable application plus the graph-shaped
/// metadata the partitioner, the stats dump and the replay workload need.
struct Topology {
  TopologyConfig config;
  ApplicationConfig app;
  std::vector<TopologyEdge> edges;
  /// Per service (index == ServiceId value): depth, owning tenant
  /// (-1 = shared backend tier).
  std::vector<int> depth;
  std::vector<int> tenant_of;
  std::vector<std::string> tenant_names;
  /// Request classes are tenant-major: tenant t entry e has class
  /// t * classes_per_tenant + e.
  int classes_per_tenant = 0;
  /// The request class async callbacks run under; every callback target
  /// defines an explicit terminal behaviour for it.
  int callback_class = 0;

  TopologyStats stats() const;
  /// Request classes owned by one tenant, ascending.
  std::vector<int> tenant_classes(int tenant) const;
  /// Evenly weighted mix over the tenant's classes; batch tenants (the
  /// trailing batch_tenant_fraction) carry Priority::kBatch on every class.
  RequestMix tenant_mix(int tenant) const;
  bool tenant_is_batch(int tenant) const;

  /// The partition-friendly description (entry pinning, replica weights,
  /// per-edge latency — async edges included, they carry real messages).
  std::vector<sim::PartitionNode> partition_nodes() const;
  std::vector<sim::PartitionEdge> partition_edges() const;
};

/// Deterministically synthesize a topology. Throws std::invalid_argument
/// when the config is structurally impossible (service budget too small
/// for the tenant/tier layout, non-positive knobs).
Topology synthesize(const TopologyConfig& cfg);

}  // namespace sora::topo
