// Topology exporters: JSON and Graphviz DOT dumps of a synthesized
// topology, plus a human-readable stats summary (depth histogram, fan-out
// tail, shared-tier in-degree). Used by tools/gen_topology and the
// planet-scale bench; the JSON form is the round-trippable description a
// partition-aware deployer would consume.
#pragma once

#include <iosfwd>

#include "topo/synth.h"

namespace sora::topo {

/// Dump the topology as JSON: config echo, services (name/tenant/depth/
/// cores/replicas), edges (sync + async), entry classes. When `shards` > 1
/// the partitioner runs and each service carries its shard assignment
/// (plus a top-level lookahead field); a failed partition emits
/// "partition_ok": false with the reason.
void write_json(std::ostream& os, const Topology& topo, int shards = 1);

/// Graphviz digraph: entries as doubleoctagons, shared backends as
/// cylinders, async edges dashed. Tenants cluster into subgraphs.
void write_dot(std::ostream& os, const Topology& topo);

/// Plain-text stats block: counts, depth histogram, fan-out mean/p99/max,
/// shared-tier in-degree mean/max.
void write_stats(std::ostream& os, const Topology& topo);

}  // namespace sora::topo
