#include "topo/synth.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>
#include <stdexcept>

#include "common/rng.h"

namespace sora::topo {

namespace {

/// Cumulative table for a discrete truncated power law P(k) ∝ k^-alpha,
/// k in [1, k_max]. Sampling walks the table: deterministic given the rng.
std::vector<double> power_law_cdf(double alpha, int k_max) {
  std::vector<double> cdf(static_cast<std::size_t>(k_max));
  double total = 0.0;
  for (int k = 1; k <= k_max; ++k) {
    total += std::pow(static_cast<double>(k), -alpha);
    cdf[static_cast<std::size_t>(k - 1)] = total;
  }
  for (double& c : cdf) c /= total;
  return cdf;
}

/// Cumulative table for Zipf(s) popularity over `n` instances.
std::vector<double> zipf_cdf(double s, int n) {
  std::vector<double> cdf(static_cast<std::size_t>(n));
  double total = 0.0;
  for (int i = 1; i <= n; ++i) {
    total += std::pow(static_cast<double>(i), -s);
    cdf[static_cast<std::size_t>(i - 1)] = total;
  }
  for (double& c : cdf) c /= total;
  return cdf;
}

int sample_cdf(const std::vector<double>& cdf, Rng& rng) {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
  return static_cast<int>(it == cdf.end() ? cdf.size() - 1
                                          : it - cdf.begin());
}

/// Log-uniform draw in [lo, hi]: tiers span decades, so uniform-in-log
/// keeps both the cheap and the expensive end populated.
double log_uniform(Rng& rng, double lo, double hi) {
  return std::exp(rng.uniform(std::log(lo), std::log(hi)));
}

std::string name_of(const char* fmt, int a, int b = -1, int c = -1) {
  char buf[64];
  if (c >= 0) {
    std::snprintf(buf, sizeof(buf), fmt, a, b, c);
  } else if (b >= 0) {
    std::snprintf(buf, sizeof(buf), fmt, a, b);
  } else {
    std::snprintf(buf, sizeof(buf), fmt, a);
  }
  return buf;
}

}  // namespace

Topology synthesize(const TopologyConfig& cfg) {
  TopologyConfig c = cfg;
  if (c.tenants < 1 || c.entries_per_tenant < 1 || c.max_depth < 1 ||
      c.fanout_max < 1 || c.fanout_alpha <= 0.0 || c.shared_zipf_s <= 0.0) {
    throw std::invalid_argument("topo: non-positive structural knob");
  }
  if (c.async_cycle_fraction < 0.0 || c.async_cycle_fraction > 1.0 ||
      c.batch_tenant_fraction < 0.0 || c.batch_tenant_fraction > 1.0 ||
      c.parallel_prob < 0.0 || c.parallel_prob > 1.0 ||
      c.cross_link_prob < 0.0 || c.cross_link_prob > 1.0 ||
      c.shared_tier_prob < 0.0 || c.shared_tier_prob > 1.0) {
    throw std::invalid_argument("topo: fraction knob outside [0, 1]");
  }
  if (c.shared_db == 0) c.shared_db = std::max(2, c.services / 100);
  if (c.shared_cache == 0) c.shared_cache = std::max(2, c.services / 80);
  if (c.shared_blob == 0) c.shared_blob = std::max(1, c.services / 250);

  const int entries = c.tenants * c.entries_per_tenant;
  const int shared_total = c.shared_db + c.shared_cache + c.shared_blob;
  const int mids_total = c.services - entries - shared_total;
  if (mids_total < c.tenants) {
    throw std::invalid_argument(
        "topo: service budget too small for tenants + shared tiers");
  }

  Rng rng(c.seed);
  Topology topo;
  topo.config = c;
  topo.classes_per_tenant = c.entries_per_tenant;
  topo.callback_class = c.tenants * c.entries_per_tenant;

  // ---- Layout: index every service before wiring any edge -------------------
  // Order: per tenant its entries then its mid levels (level-major), shared
  // backends last. ServiceId value == index in app.services.
  struct TenantLayout {
    std::vector<int> entry;                 // entry service indices
    std::vector<std::vector<int>> level;    // mid indices per level (1-based
                                            // depth; level[0] is depth 1)
  };
  std::vector<TenantLayout> tenants(static_cast<std::size_t>(c.tenants));
  std::vector<ServiceConfig>& svcs = topo.app.services;
  svcs.reserve(static_cast<std::size_t>(c.services));
  topo.depth.assign(static_cast<std::size_t>(c.services), 0);
  topo.tenant_of.assign(static_cast<std::size_t>(c.services), -1);

  int next = 0;
  int max_mid_depth = 0;
  for (int t = 0; t < c.tenants; ++t) {
    topo.tenant_names.push_back(name_of("tenant%d", t));
    TenantLayout& lay = tenants[static_cast<std::size_t>(t)];
    for (int e = 0; e < c.entries_per_tenant; ++e) {
      lay.entry.push_back(next);
      topo.tenant_of[static_cast<std::size_t>(next)] = t;
      svcs.push_back(ServiceConfig{});
      svcs.back().name = name_of("t%d_fe%d", t, e);
      ++next;
    }
    // Mid budget: even split, remainder to the first tenants.
    int budget = mids_total / c.tenants + (t < mids_total % c.tenants ? 1 : 0);
    // Geometric level-size decay: the first level is widest, deeper levels
    // shrink — the layered fan-in shape real tenant call graphs show.
    const double decay = rng.uniform(0.55, 0.8);
    const double denom =
        (1.0 - std::pow(decay, c.max_depth)) / (1.0 - decay);
    double want = static_cast<double>(budget) / denom;
    for (int l = 0; l < c.max_depth && budget > 0; ++l) {
      int sz = std::min(budget,
                        std::max(1, static_cast<int>(std::llround(want))));
      if (l == c.max_depth - 1) sz = budget;  // last chance: take the rest
      lay.level.emplace_back();
      for (int i = 0; i < sz; ++i) {
        lay.level.back().push_back(next);
        topo.depth[static_cast<std::size_t>(next)] = l + 1;
        topo.tenant_of[static_cast<std::size_t>(next)] = t;
        svcs.push_back(ServiceConfig{});
        svcs.back().name = name_of("t%d_l%d_s%d", t, l + 1, i);
        ++next;
      }
      budget -= sz;
      want *= decay;
    }
    max_mid_depth =
        std::max(max_mid_depth, static_cast<int>(lay.level.size()));
  }
  std::vector<int> db_idx, cache_idx, blob_idx;
  const int shared_depth = max_mid_depth + 1;
  const auto add_shared = [&](std::vector<int>& tier, const char* fmt,
                              int count) {
    for (int i = 0; i < count; ++i) {
      tier.push_back(next);
      topo.depth[static_cast<std::size_t>(next)] = shared_depth;
      svcs.push_back(ServiceConfig{});
      svcs.back().name = name_of(fmt, i);
      ++next;
    }
  };
  add_shared(db_idx, "db%d", c.shared_db);
  add_shared(cache_idx, "cache%d", c.shared_cache);
  add_shared(blob_idx, "blob%d", c.shared_blob);

  // ---- Edges ----------------------------------------------------------------
  const std::vector<double> fanout_cdf =
      power_law_cdf(c.fanout_alpha, c.fanout_max);
  const std::vector<double> db_zipf = zipf_cdf(c.shared_zipf_s, c.shared_db);
  const std::vector<double> cache_zipf =
      zipf_cdf(c.shared_zipf_s, c.shared_cache);
  const std::vector<double> blob_zipf =
      zipf_cdf(c.shared_zipf_s, c.shared_blob);
  // First structural parent of each mid — the ancestor chain async cycles
  // walk back up.
  std::vector<int> first_parent(static_cast<std::size_t>(c.services), -1);
  std::vector<int> sync_in_degree(static_cast<std::size_t>(c.services), 0);

  const auto add_sync_edge = [&](int from, int to) {
    topo.edges.push_back(TopologyEdge{from, to, false});
    ++sync_in_degree[static_cast<std::size_t>(to)];
    if (first_parent[static_cast<std::size_t>(to)] < 0) {
      first_parent[static_cast<std::size_t>(to)] = from;
    }
  };
  // Issue `targets` from `caller` under class key `cls`: one parallel group
  // or a sequential chain of singletons, coin-flipped per hop.
  const auto add_calls = [&](int caller, int cls, std::vector<int> targets) {
    if (targets.empty()) return;
    ClassBehavior& b = svcs[static_cast<std::size_t>(caller)].classes[cls];
    const bool parallel = targets.size() > 1 && rng.uniform() < c.parallel_prob;
    if (parallel) b.call_groups.emplace_back();
    for (int tgt : targets) {
      if (parallel) {
        b.call_groups.back().targets.push_back(
            svcs[static_cast<std::size_t>(tgt)].name);
      } else {
        b.call_groups.push_back(
            CallGroup{{svcs[static_cast<std::size_t>(tgt)].name}});
      }
      add_sync_edge(caller, tgt);
    }
  };
  // One shared-tier call: tier by fixed odds (db-heavy), instance by Zipf —
  // a handful of hot backends absorb most of the fan-in. Calls toward db
  // instances get a client connection pool (the soft resource under study).
  const auto add_shared_call = [&](int caller, int cls) {
    const double u = rng.uniform();
    const std::vector<int>* tier = &db_idx;
    const std::vector<double>* cdf = &db_zipf;
    if (u >= 0.5 && u < 0.8) {
      tier = &cache_idx;
      cdf = &cache_zipf;
    } else if (u >= 0.8) {
      tier = &blob_idx;
      cdf = &blob_zipf;
    }
    const int tgt = (*tier)[static_cast<std::size_t>(sample_cdf(*cdf, rng))];
    ClassBehavior& b = svcs[static_cast<std::size_t>(caller)].classes[cls];
    b.call_groups.push_back(
        CallGroup{{svcs[static_cast<std::size_t>(tgt)].name}});
    add_sync_edge(caller, tgt);
    if (tier == &db_idx) {
      svcs[static_cast<std::size_t>(caller)].with_edge_pool(
          svcs[static_cast<std::size_t>(tgt)].name, c.edge_pool);
    }
  };

  // Call-tree wiring. Every request executes its service's full call list,
  // so each extra parent of a mid MULTIPLIES downstream executions — naive
  // "sample k callees per caller" graphs go exponential in depth and melt
  // the fleet. Instead each level is wired bottom-up by preferential
  // attachment: every mid picks exactly one parent in the level above
  // (weights = heavy-tailed base attractiveness + children accumulated so
  // far, the Yule process that yields power-law fan-out), plus a sparse
  // cross-link second parent at cross_link_prob. Reachability is guaranteed
  // by construction, fan-out is heavy-tailed, and per-request executions
  // stay ~O(mids per tenant · (1 + cross_link_prob)^depth).
  for (int t = 0; t < c.tenants; ++t) {
    const TenantLayout& lay = tenants[static_cast<std::size_t>(t)];
    const int levels = static_cast<int>(lay.level.size());
    // Entries: each level-1 mid is assigned one front door, uniformly;
    // the call runs under that entry's own request class.
    {
      std::vector<std::vector<int>> kids(lay.entry.size());
      for (int node : lay.level[0]) {
        const std::size_t e = static_cast<std::size_t>(
            rng.uniform_int(static_cast<std::uint64_t>(lay.entry.size())));
        kids[e].push_back(node);
      }
      for (std::size_t e = 0; e < lay.entry.size(); ++e) {
        add_calls(lay.entry[e], t * c.entries_per_tenant + static_cast<int>(e),
                  kids[e]);
      }
    }
    for (int l = 0; l + 1 < levels; ++l) {
      const std::vector<int>& parents = lay.level[static_cast<std::size_t>(l)];
      // Slot sampling implements the attachment weights: parent i starts
      // with a heavy-tailed number of slots and gains one per child.
      std::vector<std::size_t> slots;
      for (std::size_t i = 0; i < parents.size(); ++i) {
        const int base = sample_cdf(fanout_cdf, rng) + 1;
        for (int s = 0; s < base; ++s) slots.push_back(i);
      }
      std::vector<std::vector<int>> kids(parents.size());
      for (int node : lay.level[static_cast<std::size_t>(l + 1)]) {
        const std::size_t p = slots[static_cast<std::size_t>(
            rng.uniform_int(static_cast<std::uint64_t>(slots.size())))];
        kids[p].push_back(node);
        slots.push_back(p);
        if (rng.uniform() < c.cross_link_prob) {
          const std::size_t q = slots[static_cast<std::size_t>(
              rng.uniform_int(static_cast<std::uint64_t>(slots.size())))];
          if (q != p) kids[q].push_back(node);
        }
      }
      for (std::size_t i = 0; i < parents.size(); ++i) {
        add_calls(parents[i], 0, kids[i]);
      }
      // Non-deepest mids hit a shared backend at shared_tier_prob.
      for (int caller : parents) {
        if (rng.uniform() < c.shared_tier_prob) add_shared_call(caller, 0);
      }
    }
    // The deepest level always bottoms out in at least one shared backend.
    for (int caller : lay.level[static_cast<std::size_t>(levels - 1)]) {
      add_shared_call(caller, 0);
      if (rng.uniform() < c.shared_tier_prob) add_shared_call(caller, 0);
    }
  }

  // ---- Async callback cycles ------------------------------------------------
  // Deep mids notify an ancestor on their own synchronous path (write-behind,
  // cache invalidation): a directed cycle, but expressed as a fire-and-forget
  // edge the response never waits on, so the request path stays a DAG.
  std::set<int> need_terminal;  // ordered: deterministic iteration
  for (int i = 0; i < c.services; ++i) {
    if (topo.depth[static_cast<std::size_t>(i)] < 2 ||
        topo.tenant_of[static_cast<std::size_t>(i)] < 0) {
      continue;
    }
    if (rng.uniform() >= c.async_cycle_fraction) continue;
    const int hops = 1 + static_cast<int>(rng.uniform_int(static_cast<
        std::uint64_t>(topo.depth[static_cast<std::size_t>(i)])));
    int ancestor = i;
    for (int h = 0; h < hops; ++h) {
      const int up = first_parent[static_cast<std::size_t>(ancestor)];
      if (up < 0) break;
      ancestor = up;
    }
    if (ancestor == i) continue;
    svcs[static_cast<std::size_t>(i)].with_async_callback(
        0, svcs[static_cast<std::size_t>(ancestor)].name, topo.callback_class,
        Priority::kBatch);
    topo.edges.push_back(TopologyEdge{i, ancestor, true});
    need_terminal.insert(ancestor);
  }

  // ---- Demands, cores, pools ------------------------------------------------
  const auto is_in = [](const std::vector<int>& v, int i) {
    return std::binary_search(v.begin(), v.end(), i);
  };
  for (int i = 0; i < c.services; ++i) {
    ServiceConfig& s = svcs[static_cast<std::size_t>(i)];
    const int tenant = topo.tenant_of[static_cast<std::size_t>(i)];
    const int depth = topo.depth[static_cast<std::size_t>(i)];
    if (tenant >= 0 && depth == 0) {
      // Entry tier: generous cores, replicated, big server-thread pool.
      const int cls = tenant * c.entries_per_tenant +
                      (i - tenants[static_cast<std::size_t>(tenant)].entry[0]);
      s.with_cores(4.0).with_replicas(2).with_entry_pool(c.entry_pool);
      s.with_demand(cls, c.demand_scale * log_uniform(rng, 200.0, 500.0),
                    c.demand_scale * log_uniform(rng, 100.0, 300.0));
    } else if (tenant >= 0) {
      s.with_cores(2.0).with_entry_pool(c.mid_entry_pool);
      s.with_demand(0, c.demand_scale * log_uniform(rng, 300.0, 1500.0),
                    c.demand_scale * log_uniform(rng, 100.0, 400.0));
    } else if (is_in(db_idx, i)) {
      s.with_cores(6.0).with_replicas(2).with_entry_pool(c.shared_entry_pool);
      s.with_demand(0, c.demand_scale * log_uniform(rng, 1000.0, 3000.0), 0.0);
    } else if (is_in(cache_idx, i)) {
      s.with_cores(4.0).with_replicas(2).with_entry_pool(c.shared_entry_pool);
      s.with_demand(0, c.demand_scale * log_uniform(rng, 100.0, 300.0), 0.0);
    } else {
      s.with_cores(4.0).with_entry_pool(c.shared_entry_pool);
      s.with_demand(0, c.demand_scale * log_uniform(rng, 2000.0, 6000.0), 0.0);
    }
  }
  // Every async-callback target gets an explicit terminal behaviour for the
  // callback class: without it the class-0 fallback would replay the
  // target's own downstream calls (and async edges — an infinite loop).
  for (int tgt : need_terminal) {
    svcs[static_cast<std::size_t>(tgt)].with_demand(
        topo.callback_class, c.demand_scale * log_uniform(rng, 100.0, 400.0),
        0.0);
  }

  // ---- Application-level wiring --------------------------------------------
  for (int t = 0; t < c.tenants; ++t) {
    for (int e = 0; e < c.entries_per_tenant; ++e) {
      const int cls = t * c.entries_per_tenant + e;
      topo.app.entry_service[cls] =
          svcs[static_cast<std::size_t>(
                   tenants[static_cast<std::size_t>(t)]
                       .entry[static_cast<std::size_t>(e)])]
              .name;
    }
  }
  topo.app.network_latency = c.network_latency;
  topo.app.request_sla = c.request_sla;
  return topo;
}

TopologyStats Topology::stats() const {
  TopologyStats s;
  s.services = static_cast<int>(app.services.size());
  s.tenants = config.tenants;
  int max_depth_seen = 0;
  for (int d : depth) max_depth_seen = std::max(max_depth_seen, d);
  s.depth_histogram.assign(static_cast<std::size_t>(max_depth_seen) + 1, 0);
  std::vector<int> out_degree(app.services.size(), 0);
  std::vector<int> shared_in(app.services.size(), 0);
  for (std::size_t i = 0; i < app.services.size(); ++i) {
    ++s.depth_histogram[static_cast<std::size_t>(depth[i])];
    if (tenant_of[i] < 0) {
      ++s.shared_services;
    } else if (depth[i] == 0) {
      ++s.entries;
    } else {
      ++s.mid_services;
    }
  }
  for (const TopologyEdge& e : edges) {
    if (e.async) {
      ++s.async_edges;
      continue;
    }
    ++s.sync_edges;
    ++out_degree[static_cast<std::size_t>(e.from)];
    if (tenant_of[static_cast<std::size_t>(e.to)] < 0) {
      ++shared_in[static_cast<std::size_t>(e.to)];
    }
  }
  std::vector<int> fan;
  for (std::size_t i = 0; i < app.services.size(); ++i) {
    if (tenant_of[i] >= 0) fan.push_back(out_degree[i]);
  }
  if (!fan.empty()) {
    std::sort(fan.begin(), fan.end());
    double sum = 0.0;
    for (int f : fan) sum += f;
    s.fanout_mean = sum / static_cast<double>(fan.size());
    s.fanout_p99 = fan[static_cast<std::size_t>(
        std::min<double>(static_cast<double>(fan.size()) - 1.0,
                         std::ceil(0.99 * static_cast<double>(fan.size())) -
                             1.0))];
    s.fanout_max = fan.back();
  }
  int shared_n = 0, shared_max = 0;
  double shared_sum = 0.0;
  for (std::size_t i = 0; i < app.services.size(); ++i) {
    if (tenant_of[i] >= 0) continue;
    ++shared_n;
    shared_sum += shared_in[i];
    shared_max = std::max(shared_max, shared_in[i]);
  }
  if (shared_n > 0) {
    s.shared_in_degree_mean = shared_sum / shared_n;
    s.shared_in_degree_max = shared_max;
  }
  return s;
}

std::vector<int> Topology::tenant_classes(int tenant) const {
  std::vector<int> out;
  for (int e = 0; e < classes_per_tenant; ++e) {
    out.push_back(tenant * classes_per_tenant + e);
  }
  return out;
}

bool Topology::tenant_is_batch(int tenant) const {
  const int batch = static_cast<int>(static_cast<double>(config.tenants) *
                                         config.batch_tenant_fraction +
                                     1e-9);
  return tenant >= config.tenants - batch;
}

RequestMix Topology::tenant_mix(int tenant) const {
  std::vector<std::pair<int, double>> weights;
  for (int cls : tenant_classes(tenant)) weights.emplace_back(cls, 1.0);
  RequestMix mix;
  mix.set_weights(std::move(weights));
  if (tenant_is_batch(tenant)) {
    for (int cls : tenant_classes(tenant)) {
      mix.with_priority(cls, Priority::kBatch);
    }
  }
  return mix;
}

std::vector<sim::PartitionNode> Topology::partition_nodes() const {
  std::vector<sim::PartitionNode> nodes;
  nodes.reserve(app.services.size());
  for (std::size_t i = 0; i < app.services.size(); ++i) {
    const ServiceConfig& s = app.services[i];
    nodes.push_back(sim::PartitionNode{
        s.name, s.cores * static_cast<double>(s.initial_replicas),
        tenant_of[i] >= 0 && depth[i] == 0});
  }
  return nodes;
}

std::vector<sim::PartitionEdge> Topology::partition_edges() const {
  std::vector<sim::PartitionEdge> out;
  out.reserve(edges.size());
  for (const TopologyEdge& e : edges) {
    out.push_back(sim::PartitionEdge{e.from, e.to, config.network_latency});
  }
  return out;
}

}  // namespace sora::topo
