#include "obs/causal/profile.h"

#include <algorithm>
#include <map>

#include "obs/json.h"

namespace sora::obs {

std::string CausalEffect::to_json() const {
  JsonObject obj;
  obj.field("perturbation", perturbation.label())
      .field("kind", to_string(perturbation.kind))
      .field("service", perturbation.service)
      .field("checkpoint_s", to_sec(checkpoint))
      .field("base_p99_ms", base_p99_ms)
      .field("cf_p99_ms", cf_p99_ms)
      .field("delta_p99_ms", delta_p99_ms())
      .field("base_goodput", base_goodput)
      .field("cf_goodput", cf_goodput)
      .field("delta_goodput", delta_goodput());
  if (base_knee != 0.0 || cf_knee != 0.0) {
    obj.field("base_knee", base_knee)
        .field("cf_knee", cf_knee)
        .field("delta_knee", delta_knee());
  }
  obj.field("traces_aligned", static_cast<std::uint64_t>(diff.traces_aligned))
      .field("spans_aligned", static_cast<std::uint64_t>(diff.spans_aligned))
      .field("spans_unmatched",
             static_cast<std::uint64_t>(diff.spans_unmatched))
      .field("e2e_delta_ms", diff.e2e_delta_ms);

  std::string edges_json = "[";
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const EdgeAttribution& e = edges[i];
    if (i > 0) edges_json += ',';
    edges_json += JsonObject{}
                      .field("parent", e.parent)
                      .field("service", e.service)
                      .field("aligned", static_cast<std::uint64_t>(e.aligned))
                      .field("mean_delta_ms", e.mean_delta_ms)
                      .field("total_delta_ms", e.total_delta_ms)
                      .str();
  }
  edges_json += ']';
  obj.raw("edges", edges_json);
  return obj.str();
}

void CausalProfile::sort_effects() {
  std::sort(effects.begin(), effects.end(),
            [](const CausalEffect& a, const CausalEffect& b) {
              const double da = a.delta_p99_ms();
              const double db = b.delta_p99_ms();
              if (da != db) return da < db;  // most improvement first
              return a.perturbation.label() < b.perturbation.label();
            });
}

namespace {

/// Best (most negative) speedup delta-p99 per service, insertion-ordered by
/// map key for determinism.
std::map<std::string, double> best_speedup_deltas(
    const std::vector<CausalEffect>& effects) {
  std::map<std::string, double> best;
  for (const CausalEffect& e : effects) {
    if (e.perturbation.kind != PerturbationKind::kServiceSpeedup) continue;
    const double d = e.delta_p99_ms();
    auto [it, inserted] = best.emplace(e.perturbation.service, d);
    if (!inserted && d < it->second) it->second = d;
  }
  return best;
}

}  // namespace

std::vector<std::string> CausalProfile::causal_service_ranking() const {
  const auto best = best_speedup_deltas(effects);
  std::vector<std::pair<std::string, double>> ranked(best.begin(), best.end());
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second < b.second;
              return a.first < b.first;
            });
  std::vector<std::string> out;
  out.reserve(ranked.size());
  for (const auto& [name, delta] : ranked) out.push_back(name);
  return out;
}

std::vector<ServiceId> CausalProfile::causal_service_ranking_ids() const {
  std::map<std::string, ServiceId> ids;
  for (const CausalEffect& e : effects) {
    if (e.perturbation.service_id.valid()) {
      ids.emplace(e.perturbation.service, e.perturbation.service_id);
    }
  }
  std::vector<ServiceId> out;
  for (const std::string& name : causal_service_ranking()) {
    const auto it = ids.find(name);
    if (it != ids.end()) out.push_back(it->second);
  }
  return out;
}

std::string CausalProfile::ranking_string() const {
  std::string out;
  for (const std::string& name : causal_service_ranking()) {
    if (!out.empty()) out += '>';
    out += name;
  }
  return out;
}

std::string CausalProfile::to_json() const {
  JsonObject obj;
  obj.field("scenario", scenario)
      .field("checkpoint_s", to_sec(checkpoint))
      .field("window_s", to_sec(window))
      .field("control_identical", control_identical)
      .field("primary_sim_digest", primary_sim_digest)
      .field("control_sim_digest", control_sim_digest)
      .field("primary_trace_digest", primary_trace_digest)
      .field("control_trace_digest", control_trace_digest)
      .field("pearson_pick", pearson_pick)
      .field("causal_pick", causal_pick)
      .field("agree", agree)
      .field("causal_rank", ranking_string());
  std::string effects_json = "[";
  for (std::size_t i = 0; i < effects.size(); ++i) {
    if (i > 0) effects_json += ',';
    effects_json += effects[i].to_json();
  }
  effects_json += ']';
  obj.raw("effects", effects_json);
  return obj.str();
}

}  // namespace sora::obs
