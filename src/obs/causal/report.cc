#include "obs/causal/report.h"

#include <sstream>

#include "common/table.h"

namespace sora::obs {

namespace {

std::string top_edge_label(const CausalEffect& e) {
  if (e.edges.empty()) return "-";
  const EdgeAttribution& top = e.edges.front();
  return top.parent + "->" + top.service + " (" + fmt(top.mean_delta_ms, 3) +
         " ms/span)";
}

TextTable effects_table(const CausalProfile& p) {
  TextTable t{{"what-if", "dp99 [ms]", "dgoodput [req/s]", "dknee",
               "traces", "top attributed edge"}};
  for (const CausalEffect& e : p.effects) {
    t.add_row({e.perturbation.label(), fmt(e.delta_p99_ms(), 2),
               fmt(e.delta_goodput(), 2),
               e.base_knee != 0.0 || e.cf_knee != 0.0 ? fmt(e.delta_knee(), 1)
                                                      : "-",
               fmt_count(e.diff.traces_aligned), top_edge_label(e)});
  }
  return t;
}

TextTable agreement_table(const std::vector<CausalProfile>& profiles) {
  TextTable t{{"regime", "pearson pick", "causal pick", "agree",
               "causal rank", "control"}};
  for (const CausalProfile& p : profiles) {
    t.add_row({p.scenario, p.pearson_pick.empty() ? "-" : p.pearson_pick,
               p.causal_pick.empty() ? "-" : p.causal_pick,
               p.agree ? "MATCH" : "DIVERGE", p.ranking_string(),
               p.control_identical ? "identical" : "DIVERGED"});
  }
  return t;
}

std::string html_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '<') {
      out += "&lt;";
    } else if (c == '>') {
      out += "&gt;";
    } else if (c == '&') {
      out += "&amp;";
    } else if (c == '"') {
      out += "&quot;";
    } else {
      out += c;
    }
  }
  return out;
}

void html_table(const TextTable& table, std::ostream& os) {
  std::ostringstream csv;
  table.print_csv(csv);
  os << "<table>";
  std::string line;
  bool header = true;
  std::istringstream is(csv.str());
  while (std::getline(is, line)) {
    os << "<tr>";
    std::string cell;
    std::istringstream ls(line);
    while (std::getline(ls, cell, ',')) {
      os << (header ? "<th>" : "<td>") << html_escape(cell)
         << (header ? "</th>" : "</td>");
    }
    os << "</tr>";
    header = false;
  }
  os << "</table>\n";
}

}  // namespace

void write_causal_report_text(const CausalReportInputs& in, std::ostream& os) {
  os << "=== " << in.title << " ===\n";
  if (in.profiles == nullptr || in.profiles->empty()) {
    os << "(no profiles)\n";
    return;
  }
  os << "\n-- Causal vs Pearson agreement --\n";
  agreement_table(*in.profiles).print(os);
  for (const CausalProfile& p : *in.profiles) {
    os << "\n-- " << p.scenario << " (checkpoint " << fmt(to_sec(p.checkpoint), 0)
       << " s, window " << fmt(to_sec(p.window), 0) << " s) --\n";
    const TextTable t = effects_table(p);
    if (t.num_rows() == 0) {
      os << "(no effects measured)\n";
    } else {
      t.print(os);
    }
  }
}

void write_causal_report_html(const CausalReportInputs& in, std::ostream& os) {
  const std::string title = html_escape(in.title);
  os << "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\"><title>" << title
     << "</title><style>\n"
     << "body{font-family:sans-serif;margin:2em;max-width:70em}\n"
     << "table{border-collapse:collapse;margin:0.5em 0}\n"
     << "th,td{border:1px solid #ccc;padding:0.25em 0.6em;text-align:right}\n"
     << "th{background:#f0f0f0}td:first-child,th:first-child{text-align:left}\n"
     << "h2{border-bottom:1px solid #ddd;padding-bottom:0.2em}\n"
     << "</style></head><body>\n<h1>" << title << "</h1>\n";
  if (in.profiles == nullptr || in.profiles->empty()) {
    os << "<p>(no profiles)</p>\n</body></html>\n";
    return;
  }
  os << "<h2>Causal vs Pearson agreement</h2>\n";
  html_table(agreement_table(*in.profiles), os);
  for (const CausalProfile& p : *in.profiles) {
    os << "<h2>" << html_escape(p.scenario) << " (checkpoint "
       << fmt(to_sec(p.checkpoint), 0) << " s)</h2>\n";
    const TextTable t = effects_table(p);
    if (t.num_rows() == 0) {
      os << "<p>(no effects measured)</p>\n";
    } else {
      html_table(t, os);
    }
  }
  os << "</body></html>\n";
}

}  // namespace sora::obs
