// What-if perturbations for the causal profiler.
//
// A perturbation is one counterfactual hypothesis applied from a checkpoint
// onward in a forked re-run of the experiment: "what if this service were
// 25% faster?" (COZ-style virtual speedup, realized here as a service-time
// scale on the seeded samplers, which preserves the RNG draw count and thus
// run determinism), "what if its entry pool had k more threads?", or "what
// if the admission cap were k lower?". The measured effect of each
// hypothesis on tail latency is *causal* by construction — same seeds, same
// arrivals, one knob changed — where the Pearson localizer's evidence is
// only observational.
#pragma once

#include <cstdio>
#include <string>

#include "common/ids.h"

namespace sora::obs {

enum class PerturbationKind {
  kServiceSpeedup,     ///< scale a service's demand by `factor` (< 1 = faster)
  kEntryPoolDelta,     ///< resize a service's entry pool by `delta`
  kAdmissionCapDelta,  ///< shift the service's admission cap bounds by `delta`
};

struct Perturbation {
  PerturbationKind kind = PerturbationKind::kServiceSpeedup;
  std::string service;    ///< target service name
  ServiceId service_id;   ///< resolved id (filled by the lab)
  double factor = 1.0;    ///< kServiceSpeedup: demand scale
  int delta = 0;          ///< pool / admission-cap shift

  /// Stable human-readable identity, e.g. "speedup(cart,0.75)",
  /// "pool(cart,+2)", "cap(cart,-4)". Used as the profile key and in
  /// decision-log records, so it must be deterministic.
  std::string label() const {
    char buf[96];
    switch (kind) {
      case PerturbationKind::kServiceSpeedup:
        std::snprintf(buf, sizeof(buf), "speedup(%s,%.2f)", service.c_str(),
                      factor);
        break;
      case PerturbationKind::kEntryPoolDelta:
        std::snprintf(buf, sizeof(buf), "pool(%s,%+d)", service.c_str(), delta);
        break;
      case PerturbationKind::kAdmissionCapDelta:
        std::snprintf(buf, sizeof(buf), "cap(%s,%+d)", service.c_str(), delta);
        break;
    }
    return buf;
  }

  static Perturbation speedup(std::string service, double factor) {
    Perturbation p;
    p.kind = PerturbationKind::kServiceSpeedup;
    p.service = std::move(service);
    p.factor = factor;
    return p;
  }
  static Perturbation pool_delta(std::string service, int delta) {
    Perturbation p;
    p.kind = PerturbationKind::kEntryPoolDelta;
    p.service = std::move(service);
    p.delta = delta;
    return p;
  }
  static Perturbation cap_delta(std::string service, int delta) {
    Perturbation p;
    p.kind = PerturbationKind::kAdmissionCapDelta;
    p.service = std::move(service);
    p.delta = delta;
    return p;
  }
};

inline const char* to_string(PerturbationKind k) {
  switch (k) {
    case PerturbationKind::kServiceSpeedup:
      return "speedup";
    case PerturbationKind::kEntryPoolDelta:
      return "pool";
    case PerturbationKind::kAdmissionCapDelta:
      return "cap";
  }
  return "?";
}

}  // namespace sora::obs
