// Causal-profile report generator.
//
// Renders one or more causal profiles (typically one per load regime) as a
// plain-text or self-contained HTML artifact: the ranked what-if table per
// profile (perturbation, Δp99, Δgoodput, Δknee, top attributed edge) and
// the causal-vs-Pearson agreement table across regimes — the artifact
// fig10 ships to show where the observational localizer and the
// experimental ground truth diverge.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "obs/causal/profile.h"

namespace sora::obs {

struct CausalReportInputs {
  std::string title = "Causal what-if profile";
  const std::vector<CausalProfile>* profiles = nullptr;
};

/// Plain-text report (fixed-width tables).
void write_causal_report_text(const CausalReportInputs& in, std::ostream& os);

/// Self-contained HTML report.
void write_causal_report_html(const CausalReportInputs& in, std::ostream& os);

}  // namespace sora::obs
