// Causal profile: the measured effect of each what-if perturbation.
//
// One CausalEffect captures a (checkpoint, perturbation) counterfactual:
// the windowed outcome deltas (p99, goodput, knee) between the baseline run
// and the perturbed fork, plus per-call-graph-edge latency attribution from
// differential span alignment (exact, because both runs share TraceIds).
// A CausalProfile aggregates the effects of one profiling round, ranks
// services by experimentally measured latency causality, and carries the
// control-run identity proof. All ordering is deterministic so the profile
// JSON is bit-stable across serial and threaded evaluation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.h"
#include "obs/causal/perturbation.h"
#include "trace/align.h"

namespace sora::obs {

/// One call-graph edge's latency attribution with resolved service names
/// (filled by the lab from DiffSummary::edges, which carries raw ids).
struct EdgeAttribution {
  std::string parent;   ///< caller service ("client" for the entry edge)
  std::string service;  ///< callee service
  std::size_t aligned = 0;
  double mean_delta_ms = 0.0;
  double total_delta_ms = 0.0;
};

struct CausalEffect {
  Perturbation perturbation;
  SimTime checkpoint = 0;  ///< perturbation activation time

  // Windowed outcomes over (checkpoint, checkpoint + window].
  double base_p99_ms = 0.0;
  double cf_p99_ms = 0.0;
  double base_goodput = 0.0;  ///< in-SLA completions per second
  double cf_goodput = 0.0;
  double base_knee = 0.0;  ///< target-service knee concurrency (0 = none)
  double cf_knee = 0.0;

  DiffSummary diff;  ///< raw per-edge attribution (sorted by |delta| desc)
  std::vector<EdgeAttribution> edges;  ///< name-resolved view of diff.edges

  double delta_p99_ms() const { return cf_p99_ms - base_p99_ms; }
  double delta_goodput() const { return cf_goodput - base_goodput; }
  double delta_knee() const { return cf_knee - base_knee; }

  std::string to_json() const;
};

struct CausalProfile {
  std::string scenario;  ///< regime label ("calibrated", "overload", ...)
  SimTime checkpoint = 0;
  SimTime window = 0;  ///< measurement window length after the checkpoint

  // Control-run identity proof: the profiler re-runs the unperturbed
  // baseline and requires bit-identical event streams and traces.
  std::uint64_t control_sim_digest = 0;
  std::uint64_t primary_sim_digest = 0;
  std::uint64_t control_trace_digest = 0;
  std::uint64_t primary_trace_digest = 0;
  bool control_identical = false;

  std::vector<CausalEffect> effects;

  std::string pearson_pick;  ///< the Pearson localizer's critical service
  std::string causal_pick;   ///< head of causal_service_ranking()
  bool agree = false;

  /// Sort effects most-latency-reducing first (delta p99 ascending,
  /// label tie-break) — call once after all effects are collected.
  void sort_effects();

  /// Service names ranked by causal latency impact: for each service with a
  /// speedup perturbation, take its best (most negative) delta p99; order
  /// ascending. The head is the service whose speedup would help tail
  /// latency most — the causal answer to "which service is critical?".
  std::vector<std::string> causal_service_ranking() const;

  /// Same ranking as resolved ServiceIds (for core::cross_validate).
  std::vector<ServiceId> causal_service_ranking_ids() const;

  /// Compact "a>b>c" rendering of the ranking for decision-log records.
  std::string ranking_string() const;

  std::string to_json() const;
};

}  // namespace sora::obs
