#include "obs/timeseries.h"

#include <cassert>

#include "obs/json.h"

namespace sora::obs {

TimeSeriesSink::TimeSeriesSink(std::string series_name,
                               std::vector<std::string> columns)
    : name_(std::move(series_name)), columns_(std::move(columns)) {
  assert(!columns_.empty());
}

void TimeSeriesSink::append(SimTime at, std::span<const double> values) {
  assert(values.size() == columns_.size() && "row arity != schema");
  at_.push_back(at);
  values_.insert(values_.end(), values.begin(), values.end());
}

void TimeSeriesSink::write_csv(std::ostream& os) const {
  os << "at_us";
  for (const std::string& c : columns_) os << ',' << c;
  os << '\n';
  for (std::size_t row = 0; row < at_.size(); ++row) {
    os << at_[row];
    for (std::size_t col = 0; col < columns_.size(); ++col) {
      std::string cell;
      append_json_number(cell, value(row, col));
      os << ',' << cell;
    }
    os << '\n';
  }
}

void TimeSeriesSink::write_jsonl(std::ostream& os) const {
  for (std::size_t row = 0; row < at_.size(); ++row) {
    JsonObject obj;
    obj.field("series", name_).field("at_us", at_[row]);
    for (std::size_t col = 0; col < columns_.size(); ++col) {
      obj.field(columns_[col], value(row, col));
    }
    os << obj << '\n';
  }
}

}  // namespace sora::obs
