#include "obs/profiler.h"

#include <algorithm>
#include <iomanip>

namespace sora::obs {

OverheadProfiler& OverheadProfiler::global() {
  static OverheadProfiler instance;
  return instance;
}

void OverheadProfiler::record(const char* stage, double us) {
  const std::lock_guard<std::mutex> lock(mu_);
  StageStats& s = stages_[stage];
  if (s.stage.empty()) s.stage = stage;
  ++s.calls;
  s.total_us += us;
  s.max_us = std::max(s.max_us, us);
}

std::vector<StageStats> OverheadProfiler::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<StageStats> out;
  out.reserve(stages_.size());
  for (const auto& [_, s] : stages_) out.push_back(s);
  return out;
}

std::vector<StageStats> OverheadProfiler::stats_since(
    const std::vector<StageStats>& baseline) const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<StageStats> out;
  for (const auto& [name, s] : stages_) {
    StageStats delta = s;
    for (const StageStats& b : baseline) {
      if (b.stage == name) {
        delta.calls -= b.calls;
        delta.total_us -= b.total_us;
        // max is not subtractable; keep the overall max as an upper bound.
        break;
      }
    }
    if (delta.calls > 0) out.push_back(std::move(delta));
  }
  return out;
}

double OverheadProfiler::total_us(const std::vector<StageStats>& stats,
                                  const std::string& prefix) {
  double total = 0.0;
  for (const StageStats& s : stats) {
    if (s.stage.rfind(prefix, 0) == 0) total += s.total_us;
  }
  return total;
}

void OverheadProfiler::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  stages_.clear();
}

void OverheadProfiler::print(const std::vector<StageStats>& stats,
                             std::ostream& os) {
  os << std::left << std::setw(28) << "stage" << std::right << std::setw(10)
     << "calls" << std::setw(14) << "mean [us]" << std::setw(14) << "max [us]"
     << std::setw(14) << "total [ms]" << '\n';
  for (const StageStats& s : stats) {
    os << std::left << std::setw(28) << s.stage << std::right << std::setw(10)
       << s.calls << std::setw(14) << std::fixed << std::setprecision(2)
       << s.mean_us() << std::setw(14) << s.max_us << std::setw(14)
       << s.total_us / 1000.0 << '\n';
  }
  os.unsetf(std::ios::fixed);
}

}  // namespace sora::obs
