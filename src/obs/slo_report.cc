#include "obs/slo_report.h"

#include <algorithm>
#include <sstream>
#include <vector>

#include "common/table.h"
#include "obs/budget.h"
#include "obs/decision_log.h"
#include "obs/quantile_sketch.h"
#include "obs/slo_monitor.h"

namespace sora::obs {

namespace {

constexpr double kPercentiles[] = {50.0, 90.0, 95.0, 99.0, 99.9};

std::string fmt_or_dash(double v, int precision) {
  return is_no_sample(v) ? "-" : fmt(v, precision);
}

/// Per-service aggregate over every attribution window.
struct ServiceAgg {
  std::string service;
  std::uint64_t traces = 0;
  double total_pt_ms = 0.0;
  double mean_pt_ms = 0.0;
  double budget_share = 0.0;
  double mean_slack_ms = 0.0;
  double min_slack_ms = 0.0;
  std::uint64_t violations = 0;
};

std::vector<ServiceAgg> aggregate_attribution(const BudgetAttributor& attr) {
  std::vector<ServiceAgg> out;
  for (const TimeSeriesSink& sink : attr.timelines()) {
    ServiceAgg a;
    a.service = sink.name();
    double slack_weighted = 0.0;
    bool first = true;
    for (std::size_t r = 0; r < sink.num_rows(); ++r) {
      const double traces = sink.value(r, 0);
      a.traces += static_cast<std::uint64_t>(traces);
      a.total_pt_ms += traces * sink.value(r, 1);
      slack_weighted += traces * sink.value(r, 3);
      const double min_slack = sink.value(r, 4);
      if (first || min_slack < a.min_slack_ms) a.min_slack_ms = min_slack;
      first = false;
      a.violations += static_cast<std::uint64_t>(sink.value(r, 5));
    }
    if (a.traces > 0) {
      const double n = static_cast<double>(a.traces);
      a.mean_pt_ms = a.total_pt_ms / n;
      a.mean_slack_ms = slack_weighted / n;
      a.budget_share = to_msec(attr.sla()) > 0.0
                           ? a.mean_pt_ms / to_msec(attr.sla())
                           : 0.0;
      out.push_back(std::move(a));
    }
  }
  std::sort(out.begin(), out.end(), [](const ServiceAgg& x, const ServiceAgg& y) {
    return x.total_pt_ms > y.total_pt_ms;
  });
  return out;
}

std::size_t decisions_during_episodes(const DecisionLog& log,
                                      const std::vector<ViolationEpisode>& eps) {
  std::size_t n = 0;
  for (const ControlDecisionRecord& r : log.records()) {
    if (r.controller == "slo-monitor") continue;
    for (const ViolationEpisode& ep : eps) {
      if (r.at >= ep.start && r.at <= ep.end) {
        ++n;
        break;
      }
    }
  }
  return n;
}

void build_tables(const SloReportInputs& in, TextTable* latency,
                  TextTable* slo, TextTable* episodes, TextTable* attribution,
                  std::string* footer) {
  if (in.latency != nullptr && in.latency->count() > 0) {
    for (double p : kPercentiles) {
      latency->add_row({"p" + fmt(p, p == 99.9 ? 1 : 0),
                        fmt_or_dash(in.latency->percentile(p) / 1e3, 1)});
    }
    latency->add_row({"mean", fmt(in.latency->mean() / 1e3, 1)});
    latency->add_row({"max", fmt(in.latency->max() / 1e3, 1)});
    latency->add_row({"samples", fmt_count(in.latency->count())});
    latency->add_row(
        {"sketch rel. accuracy", fmt(in.latency->relative_accuracy(), 3)});
    latency->add_row(
        {"sketch buckets", fmt_count(in.latency->num_buckets())});
  }

  if (in.monitor != nullptr) {
    for (const std::string& entity : in.monitor->entities()) {
      const auto eps = in.monitor->episodes_for(entity);
      double peak = 0.0;
      SimTime violated = 0;
      for (const auto* ep : eps) {
        peak = std::max(peak, ep->peak_fast_burn);
        violated += ep->duration();
      }
      slo->add_row({entity, fmt(100.0 * in.monitor->good_ratio(entity), 2),
                    fmt_count(in.monitor->total(entity)),
                    fmt_count(eps.size()), fmt(to_sec(violated), 0),
                    fmt(peak, 1)});
    }

    for (std::size_t i = 0; i < in.monitor->episodes().size(); ++i) {
      const ViolationEpisode& ep = in.monitor->episodes()[i];
      std::string top = "-";
      if (in.attribution != nullptr) {
        const std::string t = in.attribution->top_consumer(ep.start, ep.end);
        if (!t.empty()) top = t;
      }
      episodes->add_row({fmt_count(i + 1), ep.entity, fmt(to_sec(ep.start), 0),
                         ep.open ? "open" : fmt(to_sec(ep.end), 0),
                         fmt(to_sec(ep.duration()), 0),
                         fmt(ep.peak_fast_burn, 1),
                         fmt_count(ep.bad_requests), top});
    }
  }

  if (in.attribution != nullptr) {
    for (const ServiceAgg& a : aggregate_attribution(*in.attribution)) {
      attribution->add_row({a.service, fmt_count(a.traces),
                            fmt(a.total_pt_ms / 1e3, 1), fmt(a.mean_pt_ms, 2),
                            fmt(100.0 * a.budget_share, 1),
                            fmt(a.mean_slack_ms, 1), fmt(a.min_slack_ms, 1),
                            fmt_count(a.violations)});
    }
  }

  if (in.decisions != nullptr && in.monitor != nullptr &&
      !in.monitor->episodes().empty()) {
    *footer = "controller decisions during open episodes: " +
              std::to_string(decisions_during_episodes(
                  *in.decisions, in.monitor->episodes()));
  }
}

struct ReportTables {
  TextTable latency{{"latency [ms]", "value"}};
  TextTable slo{{"entity", "good %", "requests", "episodes",
                 "violated [s]", "peak burn"}};
  TextTable episodes{{"#", "entity", "start [s]", "end [s]", "dur [s]",
                      "peak burn", "bad reqs", "top budget consumer"}};
  TextTable attribution{{"service", "traces", "total PT [s]", "mean PT [ms]",
                         "budget share %", "mean slack [ms]",
                         "min slack [ms]", "violations"}};
  std::string footer;
};

}  // namespace

void write_slo_report_text(const SloReportInputs& in, std::ostream& os) {
  ReportTables t;
  build_tables(in, &t.latency, &t.slo, &t.episodes, &t.attribution, &t.footer);

  os << "=== " << in.title << " ===\n";
  os << "SLA " << fmt(to_msec(in.sla), 0) << " ms";
  if (in.monitor != nullptr) {
    os << ", objective " << fmt(100.0 * in.monitor->options().target, 1)
       << "% good, burn threshold " << fmt(in.monitor->options().burn_threshold, 1)
       << " (fast " << fmt(to_sec(in.monitor->options().fast_window), 0)
       << " s / slow " << fmt(to_sec(in.monitor->options().slow_window), 0)
       << " s)";
  }
  os << "\n\n-- End-to-end latency (quantile sketch) --\n";
  t.latency.print(os);
  os << "\n-- SLO compliance --\n";
  t.slo.print(os);
  os << "\n-- Violation episodes --\n";
  if (t.episodes.num_rows() == 0) {
    os << "(none detected)\n";
  } else {
    t.episodes.print(os);
  }
  os << "\n-- Latency-budget attribution (whole run) --\n";
  if (t.attribution.num_rows() == 0) {
    os << "(no attributed traces)\n";
  } else {
    t.attribution.print(os);
  }
  if (!t.footer.empty()) os << "\n" << t.footer << "\n";
}

namespace {

std::string html_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '<') {
      out += "&lt;";
    } else if (c == '>') {
      out += "&gt;";
    } else if (c == '&') {
      out += "&amp;";
    } else if (c == '"') {
      out += "&quot;";
    } else {
      out += c;
    }
  }
  return out;
}

void html_table(const TextTable& table, std::ostream& os) {
  // TextTable has no cell iteration API; render via CSV into rows.
  std::ostringstream csv;
  table.print_csv(csv);
  os << "<table>";
  std::string line;
  bool header = true;
  std::istringstream is(csv.str());
  while (std::getline(is, line)) {
    os << "<tr>";
    std::string cell;
    std::istringstream ls(line);
    while (std::getline(ls, cell, ',')) {
      std::string escaped;
      for (char c : cell) {
        if (c == '<') {
          escaped += "&lt;";
        } else if (c == '>') {
          escaped += "&gt;";
        } else if (c == '&') {
          escaped += "&amp;";
        } else if (c != '"') {
          escaped += c;
        }
      }
      os << (header ? "<th>" : "<td>") << escaped
         << (header ? "</th>" : "</td>");
    }
    os << "</tr>";
    header = false;
  }
  os << "</table>\n";
}

}  // namespace

void write_slo_report_html(const SloReportInputs& in, std::ostream& os) {
  ReportTables t;
  build_tables(in, &t.latency, &t.slo, &t.episodes, &t.attribution, &t.footer);

  const std::string title_escaped = html_escape(in.title);

  os << "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\"><title>"
     << title_escaped << "</title><style>\n"
     << "body{font-family:sans-serif;margin:2em;max-width:70em}\n"
     << "table{border-collapse:collapse;margin:0.5em 0}\n"
     << "th,td{border:1px solid #ccc;padding:0.25em 0.6em;text-align:right}\n"
     << "th{background:#f0f0f0}td:first-child,th:first-child{text-align:left}\n"
     << "h2{border-bottom:1px solid #ddd;padding-bottom:0.2em}\n"
     << "</style></head><body>\n";
  os << "<h1>" << title_escaped << "</h1>\n";
  os << "<p>SLA " << fmt(to_msec(in.sla), 0) << " ms";
  if (in.monitor != nullptr) {
    os << " &middot; objective " << fmt(100.0 * in.monitor->options().target, 1)
       << "% good &middot; burn threshold "
       << fmt(in.monitor->options().burn_threshold, 1);
  }
  os << "</p>\n";
  os << "<h2>End-to-end latency (quantile sketch)</h2>\n";
  html_table(t.latency, os);
  os << "<h2>SLO compliance</h2>\n";
  html_table(t.slo, os);
  os << "<h2>Violation episodes</h2>\n";
  if (t.episodes.num_rows() == 0) {
    os << "<p>(none detected)</p>\n";
  } else {
    html_table(t.episodes, os);
  }
  os << "<h2>Latency-budget attribution</h2>\n";
  if (t.attribution.num_rows() == 0) {
    os << "<p>(no attributed traces)</p>\n";
  } else {
    html_table(t.attribution, os);
  }
  if (!t.footer.empty()) os << "<p>" << t.footer << "</p>\n";
  os << "</body></html>\n";
}

}  // namespace sora::obs
