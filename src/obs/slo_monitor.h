// Streaming SLO monitor: goodput ratio, multi-window burn rate, and
// violation-episode detection.
//
// SRE-style error-budget accounting over the stream of request outcomes:
// with an objective of `target` good requests (e.g. 99%), the error budget
// is (1 - target) and the burn rate over a window is
//     bad_fraction(window) / (1 - target)
// — burn 1.0 consumes exactly the budget, sustained burn >> 1 is an
// outage-in-progress. Two windows are evaluated (the classic fast/slow
// multiwindow alert): the fast window reacts, the slow window suppresses
// flapping. An *episode* opens when both windows burn above the threshold
// and closes when the fast window recovers; each episode records its
// start/end/duration/peak so controller decisions (PR-1 decision log) can be
// lined up against the violations that triggered them.
//
// Entities are tracked independently: one for the end-to-end SLO and one per
// service (fed by latency-budget slack, see obs/budget.h). Memory per entity
// is O(slow_window / bucket) — independent of request count.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "common/time.h"
#include "obs/timeseries.h"

namespace sora::obs {

class DecisionLog;

struct SloMonitorOptions {
  /// Objective: fraction of requests that must be good (within deadline).
  double target = 0.99;
  /// Fast (reacting) and slow (confirming) burn-rate windows.
  SimTime fast_window = sec(60);
  SimTime slow_window = sec(300);
  /// Episode entry threshold on both windows' burn rates. The SRE default
  /// for a fast burn (2% of a 30-day budget in one hour) is 14.4; sim runs
  /// are minutes long, so the default here is a modest multiple of budget.
  double burn_threshold = 2.0;
  /// Counting granularity of the window ring.
  SimTime bucket = sec(1);
};

/// One contiguous episode of SLO violation for one entity.
struct ViolationEpisode {
  std::string entity;
  SimTime start = 0;
  SimTime end = 0;  ///< == start while still open
  bool open = false;
  double peak_fast_burn = 0.0;
  std::uint64_t bad_requests = 0;  ///< bad outcomes observed during episode
  std::uint64_t requests = 0;      ///< all outcomes observed during episode

  SimTime duration() const { return end - start; }
};

/// One evaluation sample of an entity's burn state.
struct BurnPoint {
  SimTime at = 0;
  double good_ratio_fast = 1.0;
  double fast_burn = 0.0;
  double slow_burn = 0.0;
  bool in_episode = false;
};

class SloMonitor {
 public:
  explicit SloMonitor(SloMonitorOptions options = {});

  /// Record one request outcome for `entity` at time `at`.
  void record(const std::string& entity, SimTime at, bool good);

  /// Evaluate burn rates for every entity as of `now`; call periodically
  /// (e.g. once per timeline bucket). Opens/closes episodes and appends one
  /// BurnPoint per entity.
  void evaluate(SimTime now);

  /// Close any open episodes (end of run).
  void finish(SimTime now);

  /// Episodes in detection order; `entity` filter optional.
  const std::vector<ViolationEpisode>& episodes() const { return episodes_; }
  std::vector<const ViolationEpisode*> episodes_for(
      const std::string& entity) const;

  /// All-time good fraction for an entity (1.0 when nothing recorded).
  double good_ratio(const std::string& entity) const;
  std::uint64_t total(const std::string& entity) const;
  std::vector<std::string> entities() const;

  /// Burn-rate timeline of one entity (empty sink when never evaluated).
  TimeSeriesSink burn_timeline(const std::string& entity) const;

  /// Emit episode open/close records ("episode_start"/"episode_end", with
  /// controller "slo-monitor") into a decision log. Nullptr detaches.
  void set_decision_log(DecisionLog* log) { decision_log_ = log; }

  const SloMonitorOptions& options() const { return options_; }

 private:
  struct Bucket {
    SimTime start = 0;
    std::uint64_t good = 0;
    std::uint64_t bad = 0;
  };

  struct Entity {
    std::deque<Bucket> ring;  // oldest first; spans <= slow_window
    std::uint64_t total_good = 0;
    std::uint64_t total_bad = 0;
    // episode state
    bool in_episode = false;
    std::size_t episode_index = 0;  // into episodes_ while open
    std::vector<BurnPoint> timeline;
  };

  void window_rates(const Entity& e, SimTime now, SimTime window,
                    double* burn, double* good_ratio) const;
  void log_episode(const ViolationEpisode& ep, bool opening, double fast_burn,
                   double slow_burn);

  SloMonitorOptions options_;
  std::map<std::string, Entity> entities_;
  std::vector<ViolationEpisode> episodes_;
  DecisionLog* decision_log_ = nullptr;
};

}  // namespace sora::obs
