// Generic time-series sink: timestamped rows of named numeric columns,
// exportable as CSV or JSONL.
//
// Unifies the per-run timeline plumbing that used to be ad-hoc per consumer
// (Experiment's ServiceTimelinePoint vectors, the benches' hand-rolled
// printing): producers append rows against a fixed schema, consumers pick
// the format. Append is O(columns); nothing is formatted until export.
#pragma once

#include <cstddef>
#include <ostream>
#include <span>
#include <string>
#include <vector>

#include "common/time.h"

namespace sora::obs {

class TimeSeriesSink {
 public:
  /// `columns` fixes the schema; every appended row must match its arity.
  explicit TimeSeriesSink(std::string series_name,
                          std::vector<std::string> columns);

  void append(SimTime at, std::span<const double> values);

  const std::string& name() const { return name_; }
  const std::vector<std::string>& columns() const { return columns_; }
  std::size_t num_rows() const { return at_.size(); }
  SimTime row_time(std::size_t i) const { return at_[i]; }
  double value(std::size_t row, std::size_t col) const {
    return values_[row * columns_.size() + col];
  }

  /// Header `at_us,<col>,...` then one row per append.
  void write_csv(std::ostream& os) const;
  /// One object per row: {"series":name,"at_us":t,"<col>":v,...}.
  void write_jsonl(std::ostream& os) const;

 private:
  std::string name_;
  std::vector<std::string> columns_;
  std::vector<SimTime> at_;
  std::vector<double> values_;  // row-major, num_rows x columns
};

}  // namespace sora::obs
