#include "obs/decision_log.h"

#include <algorithm>
#include <utility>

#include "obs/json.h"

namespace sora::obs {

std::string ControlDecisionRecord::to_json() const {
  JsonObject obj;
  obj.field("at_us", at)
      .field("controller", controller)
      .field("round", round)
      .field("target", target)
      .field("action", action)
      .field("reason", reason);

  if (!critical_service.empty()) {
    obj.field("critical_service", critical_service)
        .field("critical_utilization", critical_utilization)
        .field("critical_pcc", critical_pcc);
  }
  if (traces_analyzed > 0) {
    obj.field("traces_analyzed", static_cast<std::uint64_t>(traces_analyzed));
  }
  if (observed_p99_ms > 0.0) obj.field("observed_p99_ms", observed_p99_ms);
  if (observed_utilization > 0.0) {
    obj.field("observed_utilization", observed_utilization);
  }

  obj.field("deadline_valid", deadline_valid);
  if (deadline_valid) {
    obj.field("rt_threshold_ms", to_msec(rt_threshold))
        .field("mean_upstream_pt_ms", to_msec(mean_upstream_pt));
  }

  obj.field("estimate_valid", estimate_valid)
      .field("scatter_points", static_cast<std::uint64_t>(scatter_points));
  if (estimate_valid) {
    obj.field("recommended", recommended)
        .field("knee_concurrency", knee_concurrency)
        .field("knee_value", knee_value)
        .field("peak_concurrency", peak_concurrency)
        .field("peak_value", peak_value)
        .field("degree_used", degree_used)
        .field("r_squared", r_squared);
  } else if (!estimate_failure.empty()) {
    obj.field("estimate_failure", estimate_failure);
  }
  if (good_fraction < 1.0) obj.field("good_fraction", good_fraction);

  if (!policy.empty()) {
    obj.field("policy", policy).field("admission_limit", admission_limit);
    if (remaining_deadline != 0) {
      obj.field("remaining_deadline_ms", to_msec(remaining_deadline));
    }
    if (!priority.empty()) obj.field("priority", priority);
    if (!estimate_valid && knee_concurrency > 0.0) {
      obj.field("knee_concurrency", knee_concurrency);
    }
  }

  if (latency_target_ms > 0.0) obj.field("latency_target_ms", latency_target_ms);
  if (objective_valid) obj.field("objective", objective);

  if (!fault_kind.empty()) obj.field("fault_kind", fault_kind);
  if (!causal_rank.empty() || !causal_perturbation.empty()) {
    if (!causal_perturbation.empty()) {
      obj.field("causal_perturbation", causal_perturbation);
    }
    obj.field("causal_delta_p99_ms", causal_delta_p99_ms)
        .field("causal_rank", causal_rank);
  }
  if (!command.empty()) obj.field("command", command);

  if (fast_burn != 0.0 || slow_burn != 0.0) {
    obj.field("fast_burn", fast_burn).field("slow_burn", slow_burn);
  }
  if (peak_burn != 0.0) obj.field("peak_burn", peak_burn);
  if (episode_duration != 0) {
    obj.field("episode_duration_s", to_sec(episode_duration));
  }

  if (old_size != 0 || new_size != 0) {
    obj.field("old_size", old_size).field("new_size", new_size);
  }
  if (old_cores != 0.0 || new_cores != 0.0) {
    obj.field("old_cores", old_cores).field("new_cores", new_cores);
  }
  if (old_replicas != 0 || new_replicas != 0) {
    obj.field("old_replicas", old_replicas).field("new_replicas", new_replicas);
  }
  return obj.str();
}

void DecisionLog::enable_shard_buffers(int lanes, std::function<int()> lane_of) {
  flush_shard_buffers();
  buffers_.clear();
  buffers_.resize(static_cast<std::size_t>(lanes));
  lane_of_ = std::move(lane_of);
}

void DecisionLog::flush_shard_buffers() const {
  if (buffers_.empty()) return;
  struct Tagged {
    bool global;
    ControlDecisionRecord rec;
  };
  std::vector<Tagged> merged;
  for (std::size_t l = 0; l < buffers_.size(); ++l) {
    const bool global = l + 1 == buffers_.size();
    for (auto& r : buffers_[l]) merged.push_back({global, std::move(r)});
    buffers_[l].clear();
  }
  if (merged.empty()) return;
  // Stable: same-(at, target) records are lane-confined, so their
  // buffer-local append order survives the merge unchanged.
  std::stable_sort(merged.begin(), merged.end(),
                   [](const Tagged& a, const Tagged& b) {
                     if (a.rec.at != b.rec.at) return a.rec.at < b.rec.at;
                     if (a.global != b.global) return a.global;
                     return a.rec.target < b.rec.target;
                   });
  records_.reserve(records_.size() + merged.size());
  for (auto& t : merged) records_.push_back(std::move(t.rec));
}

std::vector<const ControlDecisionRecord*> DecisionLog::by_controller(
    const std::string& controller) const {
  flush_shard_buffers();
  std::vector<const ControlDecisionRecord*> out;
  for (const auto& r : records_) {
    if (r.controller == controller) out.push_back(&r);
  }
  return out;
}

std::vector<const ControlDecisionRecord*> DecisionLog::by_action(
    const std::string& action) const {
  flush_shard_buffers();
  std::vector<const ControlDecisionRecord*> out;
  for (const auto& r : records_) {
    if (r.action == action) out.push_back(&r);
  }
  return out;
}

std::size_t DecisionLog::count_action(const std::string& action) const {
  flush_shard_buffers();
  std::size_t n = 0;
  for (const auto& r : records_) {
    if (r.action == action) ++n;
  }
  return n;
}

void DecisionLog::write_jsonl(std::ostream& os) const {
  flush_shard_buffers();
  for (const auto& r : records_) os << r.to_json() << '\n';
}

}  // namespace sora::obs
