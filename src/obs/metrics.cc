#include "obs/metrics.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "obs/json.h"

namespace sora::obs {

std::string labels_to_string(const MetricLabels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i) out += ',';
    out += labels[i].first;
    out += '=';
    out += labels[i].second;
  }
  out += '}';
  return out;
}

const char* to_string(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "?";
}

const SeriesSnapshot* MetricsSnapshot::find(const std::string& name,
                                            const MetricLabels& labels) const {
  MetricLabels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  for (const SeriesSnapshot& s : series) {
    if (s.name == name && s.labels == sorted) return &s;
  }
  return nullptr;
}

MetricsRegistry::MetricsRegistry(Clock clock) : clock_(std::move(clock)) {}

double MetricsRegistry::Series::scalar() const {
  switch (kind) {
    case MetricKind::kCounter:
      return counter.value();
    case MetricKind::kGauge:
      return gauge.value();
    case MetricKind::kHistogram:
      return static_cast<double>(histogram.count());
  }
  return 0.0;
}

MetricsRegistry::Series& MetricsRegistry::series(const std::string& name,
                                                 MetricLabels labels,
                                                 MetricKind kind) {
  std::sort(labels.begin(), labels.end());
  std::string key = name + '|' + labels_to_string(labels);
  auto it = index_.find(key);
  if (it != index_.end()) {
    assert(it->second->kind == kind &&
           "metric re-registered with a different kind");
    return *it->second;
  }
  storage_.push_back(Series{name, std::move(labels), kind, {}, {}, {}, 0.0});
  Series& s = storage_.back();
  index_.emplace(std::move(key), &s);
  return s;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  MetricLabels labels) {
  return series(name, std::move(labels), MetricKind::kCounter).counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, MetricLabels labels) {
  return series(name, std::move(labels), MetricKind::kGauge).gauge;
}

HistogramMetric& MetricsRegistry::histogram(const std::string& name,
                                            MetricLabels labels) {
  return series(name, std::move(labels), MetricKind::kHistogram).histogram;
}

const HistogramMetric* MetricsRegistry::find_histogram(
    const std::string& name, MetricLabels labels) const {
  std::sort(labels.begin(), labels.end());
  const std::string key = name + '|' + labels_to_string(labels);
  const auto it = index_.find(key);
  if (it == index_.end() || it->second->kind != MetricKind::kHistogram) {
    return nullptr;
  }
  return &it->second->histogram;
}

void MetricsRegistry::begin_window() {
  window_start_ = now();
  for (Series& s : storage_) s.window_baseline = s.scalar();
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  snap.at = now();
  snap.window_start = window_start_;
  snap.series.reserve(storage_.size());
  for (const Series& s : storage_) {
    SeriesSnapshot out;
    out.name = s.name;
    out.labels = s.labels;
    out.kind = s.kind;
    out.value = s.scalar();
    out.window_delta = out.value - s.window_baseline;
    if (s.kind == MetricKind::kHistogram && s.histogram.count() > 0) {
      out.count = s.histogram.count();
      out.mean = s.histogram.mean();
      out.p50 = s.histogram.percentile(50.0);
      out.p99 = s.histogram.percentile(99.0);
      out.max = s.histogram.max();
    }
    snap.series.push_back(std::move(out));
  }
  return snap;
}

void MetricsRegistry::write_jsonl(const MetricsSnapshot& snap,
                                  std::ostream& os) {
  for (const SeriesSnapshot& s : snap.series) {
    JsonObject obj;
    obj.field("at_us", snap.at)
        .field("name", s.name)
        .field("kind", to_string(s.kind));
    if (!s.labels.empty()) {
      JsonObject labels;
      for (const auto& [k, v] : s.labels) labels.field(k, v);
      obj.raw("labels", labels.str());
    }
    obj.field("value", s.value).field("window_delta", s.window_delta);
    if (s.kind == MetricKind::kHistogram) {
      obj.field("count", s.count)
          .field("mean", s.mean)
          .field("p50", s.p50)
          .field("p99", s.p99)
          .field("max", s.max);
    }
    os << obj << '\n';
  }
}

}  // namespace sora::obs
