// Per-request latency-budget attribution.
//
// The deadline-propagation rule (Section 3.2, Eq. 1-3) says a service's
// local deadline is the end-to-end SLA minus the processing time its
// ancestors already consumed. This module turns that rule into an
// observability signal: every completed trace is decomposed along its span
// tree into per-hop budget consumption (processing time), the propagated
// deadline at that hop, and the remaining slack; per-service consumption is
// then aggregated into fixed windows (one per control round) and exported as
// TimeSeriesSink timelines — answering "which service ate the SLA budget
// when the episode started?".
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/time.h"
#include "obs/timeseries.h"
#include "trace/span.h"

namespace sora::obs {

/// One hop of a trace's critical path, with its budget accounting.
struct HopBudget {
  ServiceId service;
  SimTime processing = 0;     ///< PT of this hop (budget it consumed)
  SimTime span_duration = 0;  ///< full visit duration at this hop
  SimTime deadline = 0;       ///< propagated local deadline (Eq. 1-3)
  SimTime slack = 0;          ///< deadline - span_duration
};

/// A traced request's critical path decomposed into budget consumption.
struct TraceBudget {
  TraceId id;
  SimTime sla = 0;
  SimTime response = 0;
  bool met_sla = false;
  std::vector<HopBudget> hops;  ///< root first, deepest hop last

  /// Hop that consumed the most budget (largest processing time); nullptr
  /// for an empty decomposition.
  const HopBudget* top_consumer() const;
};

/// Decompose `trace`'s critical path into per-hop budget consumption.
TraceBudget attribute_budget(const Trace& trace, SimTime sla);

/// Stamp budget_deadline/budget_slack on every span of `trace` (not just the
/// critical path): a span's deadline is the SLA minus the processing time of
/// its ancestor chain. Intended as a Tracer trace finalizer so annotated
/// spans reach the warehouse and the Chrome-trace export.
void annotate_budget(Trace& trace, SimTime sla);

/// Aggregates per-trace attributions into fixed windows and per-service
/// totals. Window boundaries follow trace completion times, so one window
/// per control round lines attribution up with the decision log.
class BudgetAttributor {
 public:
  using ServiceNamer = std::function<std::string(ServiceId)>;

  /// `window` is the aggregation granularity (typically the control period).
  /// `namer` renders service ids in exports ("service-<id>" fallback).
  BudgetAttributor(SimTime sla, SimTime window, ServiceNamer namer = nullptr);

  /// Attribute one completed trace into the current window.
  void on_trace(const Trace& trace);

  /// Accumulate an already-computed decomposition (avoids re-extracting the
  /// critical path when the caller needs the TraceBudget too).
  void on_budget(const TraceBudget& budget, SimTime completed_at);

  /// Close the window containing `up_to` (appends rows for every service
  /// seen in it). Called automatically as traces cross window boundaries;
  /// call once at end-of-run to flush the tail.
  void flush(SimTime up_to);

  SimTime sla() const { return sla_; }
  SimTime window() const { return window_; }
  std::uint64_t traces_attributed() const { return traces_; }

  /// Per-service attribution timeline. Columns: traces, mean_pt_ms,
  /// budget_share (mean PT / SLA), mean_slack_ms, min_slack_ms, violations
  /// (hops that exhausted their budget).
  const std::vector<TimeSeriesSink>& timelines() const { return sinks_; }

  /// Aggregate over every window row intersecting [from, to] and return the
  /// service with the largest total attributed processing time ("" when no
  /// data). `to` = kSimTimeNever means "until the end".
  std::string top_consumer(SimTime from = 0, SimTime to = kSimTimeNever) const;

  /// Total attributed budget share per service over [from, to]: service name
  /// -> sum of (PT contribution, weighted by traces).
  std::vector<std::pair<std::string, double>> consumption_ms(
      SimTime from = 0, SimTime to = kSimTimeNever) const;

  /// Combined CSV across services: service,at_us,<columns...>.
  void write_csv(std::ostream& os) const;
  /// One JSONL object per (service, window) row.
  void write_jsonl(std::ostream& os) const;

 private:
  struct Accum {
    std::uint64_t traces = 0;
    double pt_sum_ms = 0.0;
    double slack_sum_ms = 0.0;
    double min_slack_ms = 0.0;
    std::uint64_t violations = 0;
  };

  std::string name_of(ServiceId id) const;
  TimeSeriesSink& sink_for(ServiceId id);
  void roll_window(SimTime trace_end);

  SimTime sla_;
  SimTime window_;
  ServiceNamer namer_;

  SimTime window_start_ = 0;
  bool window_open_ = false;
  std::uint64_t traces_ = 0;
  std::map<std::uint64_t, Accum> current_;  // ServiceId value -> accum
  std::map<std::uint64_t, std::size_t> sink_index_;
  std::vector<TimeSeriesSink> sinks_;
  std::vector<std::string> sink_names_;
};

}  // namespace sora::obs
