// Mergeable quantile sketch (DDSketch-style) with bounded relative error.
//
// The streaming replacement for the sample-vector percentile paths: record()
// maps each value onto a logarithmic bucket grid chosen so that any value in
// a bucket is within `relative_accuracy` of the bucket's representative
// value; percentile queries then walk the cumulative counts. Memory is
// O(log(max/min) / relative_accuracy) — independent of how many samples were
// recorded — and two sketches with the same accuracy merge by adding bucket
// counts, so per-instance or per-window sketches compose into global ones
// without revisiting samples.
//
// Guarantee: for a non-empty sketch, percentile(p) is within a factor
// (1 ± relative_accuracy) of an exact order statistic at that rank.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/stats.h"

namespace sora::obs {

class QuantileSketch {
 public:
  /// `relative_accuracy` (alpha, in (0,1)) bounds the relative error of
  /// quantile queries. `max_buckets` caps memory: when exceeded, the lowest
  /// buckets collapse into one (tail accuracy — what SLO monitoring reads —
  /// is always preserved; only the extreme low quantiles coarsen).
  explicit QuantileSketch(double relative_accuracy = 0.01,
                          std::size_t max_buckets = 4096);

  /// Record `n` occurrences of `value`. Negative values clamp to 0; values
  /// below the indexable minimum land in a dedicated zero bucket.
  void record(double value, std::uint64_t n = 1);

  /// Merge another sketch (must have the same relative accuracy).
  void merge(const QuantileSketch& other);

  void reset();

  std::uint64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

  /// p in [0, 100]. Returns kNoSample (NaN) for an empty sketch; otherwise a
  /// representative value within the configured relative accuracy of the
  /// order statistic at rank round(p/100 * (count-1)).
  double percentile(double p) const;

  /// Number of recorded values <= threshold, at bucket granularity.
  std::uint64_t count_at_or_below(double threshold) const;

  double relative_accuracy() const { return alpha_; }
  /// Current number of occupied buckets (the memory footprint proxy; bounded
  /// by max_buckets regardless of sample count).
  std::size_t num_buckets() const {
    return occupied_ + (zero_count_ > 0 ? 1 : 0);
  }
  std::size_t max_buckets() const { return max_buckets_; }

 private:
  int key_for(double value) const;
  double representative(int key) const;
  /// Dense-store cell for `key`, growing the array as needed.
  std::uint64_t& cell(int key);
  /// Fold the lowest occupied bucket into the next one up.
  void collapse_lowest();

  double alpha_;
  double gamma_;          // (1 + alpha) / (1 - alpha)
  double log_gamma_;      // ln(gamma)
  double inv_log_gamma_;  // 1 / ln(gamma)
  std::size_t max_buckets_;

  // Dense store: counts_[i] is the count for bucket key base_key_ + i.
  // Contiguous so the per-record hot path is an array increment rather
  // than a tree insert; ascending iteration falls out for free.
  std::vector<std::uint64_t> counts_;
  int base_key_ = 0;
  std::size_t occupied_ = 0;      // nonzero cells in counts_
  std::uint64_t zero_count_ = 0;  // values < kMinIndexable
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace sora::obs
