#include "obs/chrome_trace.h"

#include <set>
#include <vector>

#include "obs/json.h"

namespace sora::obs {
namespace {

// Thread id shown for spans whose instance is unknown (e.g. root spans
// opened by the client before a replica is picked).
constexpr std::uint64_t kClientTid = 0;

std::uint64_t span_tid(const Span& s) {
  return s.instance.valid() ? s.instance.value() + 1 : kClientTid;
}

void emit_span(const Span& s, const Trace& t, const ServiceNamer& namer,
               bool& first, std::ostream& os) {
  JsonObject args;
  args.field("trace", t.id.value())
      .field("span", s.id.value())
      .field("class", s.request_class)
      .field("queue_us", s.admitted - s.arrival)
      .field("downstream_wait_us", s.downstream_wait)
      .field("processing_us", s.processing_time());

  JsonObject ev;
  ev.field("name", namer(s.service))
      .field("cat", "span")
      .field("ph", "X")
      .field("ts", s.arrival)
      .field("dur", s.duration())
      .field("pid", s.service.value())
      .field("tid", span_tid(s))
      .raw("args", args.str());

  if (!first) os << ",\n";
  first = false;
  os << ev.str();
}

void emit_process_name(ServiceId service, const ServiceNamer& namer,
                       bool& first, std::ostream& os) {
  JsonObject args;
  args.field("name", namer(service));
  JsonObject ev;
  ev.field("name", "process_name")
      .field("ph", "M")
      .field("pid", service.value())
      .raw("args", args.str());
  if (!first) os << ",\n";
  first = false;
  os << ev.str();
}

class Exporter {
 public:
  Exporter(const ServiceNamer& namer, std::ostream& os,
           const ChromeTraceOptions& options)
      : namer_(namer), os_(os), options_(options) {
    os_ << "{\"traceEvents\":[\n";
  }

  bool want_more() const {
    return options_.max_traces == 0 || exported_ < options_.max_traces;
  }

  void add(const Trace& t) {
    if (!want_more()) return;
    if (t.end < options_.from || t.end > options_.to) return;
    ++exported_;
    for (const Span& s : t.spans) {
      if (named_.insert(s.service.value()).second) {
        emit_process_name(s.service, namer_, first_, os_);
      }
      emit_span(s, t, namer_, first_, os_);
    }
  }

  std::size_t finish() {
    os_ << "\n],\"displayTimeUnit\":\"ms\"}\n";
    return exported_;
  }

 private:
  const ServiceNamer& namer_;
  std::ostream& os_;
  ChromeTraceOptions options_;
  std::set<std::uint64_t> named_;
  bool first_ = true;
  std::size_t exported_ = 0;
};

}  // namespace

std::size_t export_chrome_trace(const TraceWarehouse& warehouse,
                                const ServiceNamer& namer, std::ostream& os,
                                ChromeTraceOptions options) {
  Exporter exporter(namer, os, options);
  warehouse.for_each_in_window(options.from, options.to,
                               [&](const Trace& t) { exporter.add(t); });
  return exporter.finish();
}

std::size_t export_chrome_trace(const std::vector<Trace>& traces,
                                const ServiceNamer& namer, std::ostream& os,
                                ChromeTraceOptions options) {
  Exporter exporter(namer, os, options);
  for (const Trace& t : traces) exporter.add(t);
  return exporter.finish();
}

}  // namespace sora::obs
