#include "obs/budget.h"

#include <algorithm>
#include <unordered_map>

#include "obs/json.h"
#include "trace/critical_path.h"

namespace sora::obs {

namespace {
const std::vector<std::string> kColumns = {
    "traces",        "mean_pt_ms",   "budget_share",
    "mean_slack_ms", "min_slack_ms", "violations"};
}  // namespace

const HopBudget* TraceBudget::top_consumer() const {
  const HopBudget* best = nullptr;
  for (const HopBudget& h : hops) {
    if (best == nullptr || h.processing > best->processing) best = &h;
  }
  return best;
}

TraceBudget attribute_budget(const Trace& trace, SimTime sla) {
  TraceBudget out;
  out.id = trace.id;
  out.sla = sla;
  out.response = trace.response_time();
  out.met_sla = out.response <= sla;
  const CriticalPath path = extract_critical_path(trace);
  out.hops.reserve(path.hops.size());
  SimTime upstream = 0;
  for (const CriticalHop& hop : path.hops) {
    HopBudget hb;
    hb.service = hop.service;
    hb.processing = hop.processing_time;
    hb.span_duration = hop.span_duration;
    hb.deadline = sla - upstream;
    hb.slack = hb.deadline - hop.span_duration;
    out.hops.push_back(hb);
    upstream += hop.processing_time;
  }
  return out;
}

void annotate_budget(Trace& trace, SimTime sla) {
  if (trace.spans.empty()) return;
  // Spans are stored in creation order, so every parent precedes its
  // children and one forward pass suffices.
  std::unordered_map<std::uint64_t, std::size_t> index;
  index.reserve(trace.spans.size());
  for (std::size_t i = 0; i < trace.spans.size(); ++i) {
    index.emplace(trace.spans[i].id.value(), i);
  }
  for (Span& s : trace.spans) {
    SimTime deadline = sla;
    if (s.parent.valid()) {
      const auto it = index.find(s.parent.value());
      if (it != index.end()) {
        const Span& parent = trace.spans[it->second];
        deadline = parent.budget_deadline - parent.processing_time();
      }
    }
    s.budget_deadline = deadline;
    s.budget_slack = deadline - s.duration();
  }
}

BudgetAttributor::BudgetAttributor(SimTime sla, SimTime window,
                                   ServiceNamer namer)
    : sla_(sla), window_(std::max<SimTime>(window, 1)), namer_(std::move(namer)) {}

std::string BudgetAttributor::name_of(ServiceId id) const {
  if (namer_) {
    std::string name = namer_(id);
    if (!name.empty()) return name;
  }
  return "service-" + std::to_string(id.value());
}

TimeSeriesSink& BudgetAttributor::sink_for(ServiceId id) {
  const auto it = sink_index_.find(id.value());
  if (it != sink_index_.end()) return sinks_[it->second];
  sink_index_.emplace(id.value(), sinks_.size());
  sink_names_.push_back(name_of(id));
  sinks_.emplace_back(sink_names_.back(), kColumns);
  return sinks_.back();
}

void BudgetAttributor::roll_window(SimTime trace_end) {
  if (!window_open_) {
    window_start_ = (trace_end / window_) * window_;
    window_open_ = true;
    return;
  }
  while (trace_end >= window_start_ + window_) {
    flush(window_start_ + window_);
    window_start_ += window_;
  }
}

void BudgetAttributor::on_trace(const Trace& trace) {
  on_budget(attribute_budget(trace, sla_), trace.end);
}

void BudgetAttributor::on_budget(const TraceBudget& budget,
                                 SimTime completed_at) {
  roll_window(completed_at);
  ++traces_;
  for (const HopBudget& hop : budget.hops) {
    Accum& a = current_[hop.service.value()];
    const double slack_ms = to_msec(hop.slack);
    if (a.traces == 0 || slack_ms < a.min_slack_ms) a.min_slack_ms = slack_ms;
    ++a.traces;
    a.pt_sum_ms += to_msec(hop.processing);
    a.slack_sum_ms += slack_ms;
    if (hop.slack < 0) ++a.violations;
  }
}

void BudgetAttributor::flush(SimTime up_to) {
  if (current_.empty()) return;
  const double sla_ms = to_msec(sla_);
  for (const auto& [svc, a] : current_) {
    const double n = static_cast<double>(a.traces);
    const double mean_pt = a.traces ? a.pt_sum_ms / n : 0.0;
    const double row[] = {n,
                          mean_pt,
                          sla_ms > 0 ? mean_pt / sla_ms : 0.0,
                          a.traces ? a.slack_sum_ms / n : 0.0,
                          a.min_slack_ms,
                          static_cast<double>(a.violations)};
    sink_for(ServiceId(svc)).append(up_to, row);
  }
  current_.clear();
}

std::vector<std::pair<std::string, double>> BudgetAttributor::consumption_ms(
    SimTime from, SimTime to) const {
  std::vector<std::pair<std::string, double>> out;
  for (std::size_t i = 0; i < sinks_.size(); ++i) {
    const TimeSeriesSink& sink = sinks_[i];
    double total = 0.0;
    for (std::size_t r = 0; r < sink.num_rows(); ++r) {
      const SimTime at = sink.row_time(r);
      if (at < from || at > to) continue;
      total += sink.value(r, 0) * sink.value(r, 1);  // traces * mean_pt_ms
    }
    if (total > 0.0) out.emplace_back(sink_names_[i], total);
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return out;
}

std::string BudgetAttributor::top_consumer(SimTime from, SimTime to) const {
  const auto totals = consumption_ms(from, to);
  return totals.empty() ? std::string() : totals.front().first;
}

void BudgetAttributor::write_csv(std::ostream& os) const {
  os << "service,at_us";
  for (const std::string& c : kColumns) os << ',' << c;
  os << '\n';
  for (std::size_t i = 0; i < sinks_.size(); ++i) {
    const TimeSeriesSink& sink = sinks_[i];
    for (std::size_t r = 0; r < sink.num_rows(); ++r) {
      os << sink_names_[i] << ',' << sink.row_time(r);
      for (std::size_t c = 0; c < kColumns.size(); ++c) {
        std::string v;
        append_json_number(v, sink.value(r, c));
        os << ',' << v;
      }
      os << '\n';
    }
  }
}

void BudgetAttributor::write_jsonl(std::ostream& os) const {
  for (const TimeSeriesSink& sink : sinks_) sink.write_jsonl(os);
}

}  // namespace sora::obs
