#include "obs/slo_monitor.h"

#include <algorithm>

#include "obs/decision_log.h"

namespace sora::obs {

SloMonitor::SloMonitor(SloMonitorOptions options) : options_(options) {
  options_.bucket = std::max<SimTime>(options_.bucket, 1);
  options_.fast_window = std::max(options_.fast_window, options_.bucket);
  options_.slow_window = std::max(options_.slow_window, options_.fast_window);
  options_.target = std::clamp(options_.target, 0.0, 0.999999);
}

void SloMonitor::record(const std::string& entity, SimTime at, bool good) {
  Entity& e = entities_[entity];
  const SimTime bucket_start = (at / options_.bucket) * options_.bucket;
  if (e.ring.empty() || e.ring.back().start < bucket_start) {
    e.ring.push_back(Bucket{bucket_start, 0, 0});
  }
  // Out-of-order completions land in the newest bucket; the error is at most
  // one bucket of skew, which the windowed sums tolerate.
  Bucket& b = e.ring.back();
  if (good) {
    ++b.good;
    ++e.total_good;
  } else {
    ++b.bad;
    ++e.total_bad;
  }
  if (e.in_episode) {
    ViolationEpisode& ep = episodes_[e.episode_index];
    ++ep.requests;
    if (!good) ++ep.bad_requests;
  }
  // Trim history beyond the slow window.
  const SimTime horizon = bucket_start - options_.slow_window;
  while (!e.ring.empty() && e.ring.front().start < horizon) e.ring.pop_front();
}

void SloMonitor::window_rates(const Entity& e, SimTime now, SimTime window,
                              double* burn, double* good_ratio) const {
  std::uint64_t good = 0, bad = 0;
  const SimTime from = now - window;
  for (const Bucket& b : e.ring) {
    if (b.start + options_.bucket <= from || b.start > now) continue;
    good += b.good;
    bad += b.bad;
  }
  const std::uint64_t total = good + bad;
  const double bad_fraction =
      total ? static_cast<double>(bad) / static_cast<double>(total) : 0.0;
  *good_ratio = total ? 1.0 - bad_fraction : 1.0;
  *burn = bad_fraction / (1.0 - options_.target);
}

void SloMonitor::log_episode(const ViolationEpisode& ep, bool opening,
                             double fast_burn, double slow_burn) {
  if (decision_log_ == nullptr) return;
  ControlDecisionRecord rec;
  rec.at = opening ? ep.start : ep.end;
  rec.controller = "slo-monitor";
  rec.target = ep.entity;
  rec.action = opening ? "episode_start" : "episode_end";
  rec.fast_burn = fast_burn;
  rec.slow_burn = slow_burn;
  if (opening) {
    rec.reason = "burn rate above threshold in fast+slow windows";
  } else {
    rec.peak_burn = ep.peak_fast_burn;
    rec.episode_duration = ep.duration();
    rec.reason = "fast-window burn recovered";
  }
  decision_log_->append(std::move(rec));
}

void SloMonitor::evaluate(SimTime now) {
  for (auto& [name, e] : entities_) {
    double fast_burn = 0.0, slow_burn = 0.0;
    double fast_good = 1.0, slow_good = 1.0;
    window_rates(e, now, options_.fast_window, &fast_burn, &fast_good);
    window_rates(e, now, options_.slow_window, &slow_burn, &slow_good);

    if (!e.in_episode && fast_burn >= options_.burn_threshold &&
        slow_burn >= options_.burn_threshold) {
      ViolationEpisode ep;
      ep.entity = name;
      ep.start = ep.end = now;
      ep.open = true;
      ep.peak_fast_burn = fast_burn;
      e.in_episode = true;
      e.episode_index = episodes_.size();
      episodes_.push_back(ep);
      log_episode(episodes_.back(), /*opening=*/true, fast_burn, slow_burn);
    } else if (e.in_episode) {
      ViolationEpisode& ep = episodes_[e.episode_index];
      ep.end = now;
      ep.peak_fast_burn = std::max(ep.peak_fast_burn, fast_burn);
      if (fast_burn < options_.burn_threshold) {
        ep.open = false;
        e.in_episode = false;
        log_episode(ep, /*opening=*/false, fast_burn, slow_burn);
      }
    }

    BurnPoint p;
    p.at = now;
    p.good_ratio_fast = fast_good;
    p.fast_burn = fast_burn;
    p.slow_burn = slow_burn;
    p.in_episode = e.in_episode;
    e.timeline.push_back(p);
  }
}

void SloMonitor::finish(SimTime now) {
  for (auto& [name, e] : entities_) {
    if (!e.in_episode) continue;
    ViolationEpisode& ep = episodes_[e.episode_index];
    ep.end = std::max(ep.end, now);
    ep.open = false;
    e.in_episode = false;
    log_episode(ep, /*opening=*/false, 0.0, 0.0);
  }
}

std::vector<const ViolationEpisode*> SloMonitor::episodes_for(
    const std::string& entity) const {
  std::vector<const ViolationEpisode*> out;
  for (const ViolationEpisode& ep : episodes_) {
    if (ep.entity == entity) out.push_back(&ep);
  }
  return out;
}

double SloMonitor::good_ratio(const std::string& entity) const {
  const auto it = entities_.find(entity);
  if (it == entities_.end()) return 1.0;
  const std::uint64_t total = it->second.total_good + it->second.total_bad;
  return total ? static_cast<double>(it->second.total_good) /
                     static_cast<double>(total)
               : 1.0;
}

std::uint64_t SloMonitor::total(const std::string& entity) const {
  const auto it = entities_.find(entity);
  if (it == entities_.end()) return 0;
  return it->second.total_good + it->second.total_bad;
}

std::vector<std::string> SloMonitor::entities() const {
  std::vector<std::string> out;
  out.reserve(entities_.size());
  for (const auto& [name, e] : entities_) out.push_back(name);
  return out;
}

TimeSeriesSink SloMonitor::burn_timeline(const std::string& entity) const {
  TimeSeriesSink sink(entity,
                      {"good_ratio_fast", "fast_burn", "slow_burn",
                       "in_episode"});
  const auto it = entities_.find(entity);
  if (it == entities_.end()) return sink;
  for (const BurnPoint& p : it->second.timeline) {
    const double row[] = {p.good_ratio_fast, p.fast_burn, p.slow_burn,
                          p.in_episode ? 1.0 : 0.0};
    sink.append(p.at, row);
  }
  return sink;
}

}  // namespace sora::obs
