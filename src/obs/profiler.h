// Wall-clock overhead profiler for the control plane.
//
// The paper's §6 claims the whole adaptation loop costs sub-second latency
// and <= 5% of one CPU. To substantiate that, the expensive control-path
// stages (polynomial fitting, Kneedle, critical-path extraction,
// localization, deadline propagation, the whole control round) are wrapped
// in scoped wall-clock timers that accumulate per-stage call counts and
// durations. Simulation results are unaffected: the profiler measures host
// time and never feeds back into sim time.
//
// A process-global instance keeps the hot control path free of plumbing.
// Each Simulator is single-threaded, but independent experiments may run
// concurrently on sweep-worker threads (harness::SweepRunner), so the
// per-stage accumulators are guarded by a mutex — contention is negligible
// because stages fire at control-round granularity, not per event. Harness
// consumers (ExperimentSummary, bench/micro_model_cost) snapshot-and-diff
// around the region they attribute; note that under a parallel sweep the
// global profiler aggregates stages from all concurrently running
// experiments, so per-experiment deltas are attributable only in serial
// runs.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace sora::obs {

/// Accumulated wall-clock cost of one named stage.
struct StageStats {
  std::string stage;
  std::uint64_t calls = 0;
  double total_us = 0.0;
  double max_us = 0.0;

  double mean_us() const {
    return calls ? total_us / static_cast<double>(calls) : 0.0;
  }
};

class OverheadProfiler {
 public:
  using clock = std::chrono::steady_clock;

  /// The process-global profiler used by the SORA_PROFILE_STAGE macro.
  static OverheadProfiler& global();

  /// RAII stage timer; records into the profiler on destruction.
  class Scope {
   public:
    Scope(OverheadProfiler& profiler, const char* stage)
        : profiler_(&profiler), stage_(stage), start_(clock::now()) {}
    ~Scope() {
      const double us =
          std::chrono::duration<double, std::micro>(clock::now() - start_)
              .count();
      profiler_->record(stage_, us);
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    OverheadProfiler* profiler_;
    const char* stage_;
    clock::time_point start_;
  };

  void record(const char* stage, double us);

  /// Per-stage stats, sorted by stage name (deterministic output order).
  std::vector<StageStats> stats() const;
  /// Stats relative to an earlier snapshot (per-region attribution).
  std::vector<StageStats> stats_since(const std::vector<StageStats>& baseline)
      const;
  /// Sum of total_us across stages in `stats` whose name starts with
  /// `prefix` ("" = all).
  static double total_us(const std::vector<StageStats>& stats,
                         const std::string& prefix = "");

  void reset();

  /// Render a fixed-width per-stage table (benches, debug output).
  static void print(const std::vector<StageStats>& stats, std::ostream& os);

 private:
  mutable std::mutex mu_;
  std::map<std::string, StageStats> stages_;
};

}  // namespace sora::obs

/// Time the enclosing scope as `stage` on the global profiler.
#define SORA_PROFILE_STAGE(stage)                                \
  ::sora::obs::OverheadProfiler::Scope sora_profile_scope_##__LINE__( \
      ::sora::obs::OverheadProfiler::global(), stage)
