// Minimal JSON emission for the telemetry exporters.
//
// The exporters (decision-log JSONL, Chrome trace_event, metrics snapshots)
// only ever *write* JSON, and only flat-ish records, so a tiny append-only
// writer suffices — no external dependency, no DOM. Numbers are emitted with
// enough precision to round-trip doubles; non-finite doubles degrade to null
// (JSON has no NaN/Inf).
#pragma once

#include <cmath>
#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>

namespace sora::obs {

/// Append `s` to `out` as a quoted, escaped JSON string literal.
inline void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xf];
          out += hex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

inline void append_json_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  // Integral doubles print without a fraction (keeps JSONL diffs readable).
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    out += std::to_string(static_cast<std::int64_t>(v));
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out += buf;
}

/// Append-only writer for one JSON object: field(...) adds `"key":value`
/// pairs with comma management; str() yields `{...}`.
class JsonObject {
 public:
  JsonObject() : body_("{") {}

  JsonObject& field(std::string_view key, std::string_view value) {
    begin(key);
    append_json_string(body_, value);
    return *this;
  }
  JsonObject& field(std::string_view key, const char* value) {
    return field(key, std::string_view(value));
  }
  JsonObject& field(std::string_view key, const std::string& value) {
    return field(key, std::string_view(value));
  }
  JsonObject& field(std::string_view key, double value) {
    begin(key);
    append_json_number(body_, value);
    return *this;
  }
  JsonObject& field(std::string_view key, std::int64_t value) {
    begin(key);
    body_ += std::to_string(value);
    return *this;
  }
  JsonObject& field(std::string_view key, std::uint64_t value) {
    begin(key);
    body_ += std::to_string(value);
    return *this;
  }
  JsonObject& field(std::string_view key, int value) {
    return field(key, static_cast<std::int64_t>(value));
  }
  JsonObject& field(std::string_view key, bool value) {
    begin(key);
    body_ += value ? "true" : "false";
    return *this;
  }
  /// Splice a pre-rendered JSON value (object/array) as a field.
  JsonObject& raw(std::string_view key, std::string_view json) {
    begin(key);
    body_ += json;
    return *this;
  }

  std::string str() const { return body_ + "}"; }

 private:
  void begin(std::string_view key) {
    if (body_.size() > 1) body_ += ',';
    append_json_string(body_, key);
    body_ += ':';
  }

  std::string body_;
};

inline std::ostream& operator<<(std::ostream& os, const JsonObject& obj) {
  return os << obj.str();
}

}  // namespace sora::obs
