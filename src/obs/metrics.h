// Sim-time-aware metrics registry.
//
// The unified instrument panel for the whole stack: services publish pool
// and CPU state, the simulator publishes event-loop stats, and the control
// planes (Sora/ConScale, the autoscalers) publish decision counters. A
// series is (name, labels) -> instrument; handles returned by the registry
// are stable for the registry's lifetime, so hot paths pay one lookup at
// wiring time and a plain add/set afterwards.
//
// Three instrument kinds, Prometheus-style:
//   Counter   — monotonically non-decreasing total (events, resizes, waits)
//   Gauge     — instantaneous value (queue depth, pool size, knee position)
//   Histogram — value distribution with percentile queries (RPC latency)
//
// Windowed snapshots: begin_window() marks a baseline; snapshot() reports,
// per series, the current value plus the delta since the baseline — which is
// how per-control-round rates are derived from cumulative totals without
// resetting anything (observers never disturb each other).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/time.h"
#include "obs/quantile_sketch.h"

namespace sora::obs {

/// Sorted key=value pairs identifying one series of a metric family.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// Render labels as `{k1=v1,k2=v2}` (empty string for no labels).
std::string labels_to_string(const MetricLabels& labels);

class Counter {
 public:
  /// Increment by `delta` (must be >= 0; counters never decrease).
  void add(double delta = 1.0) {
    if (delta > 0.0) value_ += delta;
  }
  /// Adopt an externally-accumulated monotonic total (e.g. a pool's
  /// total_waits). Regressions are ignored rather than applied: the total
  /// may come from a source that was reset (a cleared sampler), and a
  /// counter going backwards would corrupt every window delta downstream.
  void set_total(double total) {
    if (total > value_) value_ = total;
  }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double delta) { value_ += delta; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Distribution instrument over non-negative values (negative observations
/// are clamped to 0). Unit is the caller's choice; the convention in this
/// repo is microseconds for durations. Backed by a mergeable quantile
/// sketch, so per-instance series can be combined across registries or time
/// windows without raw samples.
class HistogramMetric {
 public:
  void observe(double value) { sketch_.record(value); }

  std::uint64_t count() const { return sketch_.count(); }
  double sum() const { return sketch_.sum(); }
  double mean() const { return sketch_.mean(); }
  double min() const { return sketch_.min(); }
  double max() const { return sketch_.max(); }
  /// p in [0, 100]; relative-error-bounded representative value (kNoSample
  /// when nothing was observed).
  double percentile(double p) const { return sketch_.percentile(p); }

  /// Fold another instrument's observations into this one.
  void merge(const HistogramMetric& other) { sketch_.merge(other.sketch_); }
  const QuantileSketch& sketch() const { return sketch_; }

 private:
  QuantileSketch sketch_;
};

enum class MetricKind { kCounter, kGauge, kHistogram };

const char* to_string(MetricKind kind);

/// One series' state at snapshot time.
struct SeriesSnapshot {
  std::string name;
  MetricLabels labels;
  MetricKind kind = MetricKind::kGauge;
  double value = 0.0;         ///< counter total / gauge value / histogram count
  double window_delta = 0.0;  ///< value - value at begin_window()
  // Histogram-only summary (zeros otherwise).
  std::uint64_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

struct MetricsSnapshot {
  SimTime at = 0;
  SimTime window_start = 0;
  std::vector<SeriesSnapshot> series;

  double window_sec() const { return to_sec(at - window_start); }
  /// Lookup by exact (name, labels); nullptr when absent.
  const SeriesSnapshot* find(const std::string& name,
                             const MetricLabels& labels = {}) const;
};

class MetricsRegistry {
 public:
  using Clock = std::function<SimTime()>;

  /// `clock` stamps snapshots with the current sim time; without one,
  /// snapshots are stamped 0 (wall time is deliberately not used — telemetry
  /// must be deterministic).
  explicit MetricsRegistry(Clock clock = nullptr);

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get or create a series. References remain valid for the registry's
  /// lifetime. Labels are sorted internally, so label order never creates
  /// duplicate series.
  Counter& counter(const std::string& name, MetricLabels labels = {});
  Gauge& gauge(const std::string& name, MetricLabels labels = {});
  HistogramMetric& histogram(const std::string& name, MetricLabels labels = {});

  /// Const lookup of an existing histogram series; nullptr when absent.
  /// Unlike histogram(), never creates the series — read paths (the ctl
  /// plane's /statusz assembly) must not grow the registry.
  const HistogramMetric* find_histogram(const std::string& name,
                                        MetricLabels labels = {}) const;

  /// Mark the start of a measurement window: subsequent snapshots report
  /// deltas relative to this instant. Series created after begin_window()
  /// have a baseline of 0.
  void begin_window();

  /// Current state of every series, stamped with the clock.
  MetricsSnapshot snapshot() const;

  /// One JSONL line per series of `snap` (schema: at_us, name, labels,
  /// kind, value, window_delta, and the histogram summary when relevant).
  static void write_jsonl(const MetricsSnapshot& snap, std::ostream& os);

  std::size_t size() const { return index_.size(); }
  SimTime now() const { return clock_ ? clock_() : 0; }

 private:
  struct Series {
    std::string name;
    MetricLabels labels;
    MetricKind kind;
    Counter counter;
    Gauge gauge;
    HistogramMetric histogram;
    double window_baseline = 0.0;

    double scalar() const;
  };

  Series& series(const std::string& name, MetricLabels labels,
                 MetricKind kind);

  Clock clock_;
  SimTime window_start_ = 0;
  std::deque<Series> storage_;  // deque: stable references on growth
  std::map<std::string, Series*> index_;  // "name|{labels}" -> series
};

}  // namespace sora::obs
