#include "obs/quantile_sketch.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace sora::obs {

namespace {
// Values below this are indistinguishable from zero for latency purposes
// (well under a nanosecond in the repo's microsecond convention) and go to
// the zero bucket; keeps the key range finite.
constexpr double kMinIndexable = 1e-9;

constexpr double kLn2 = 0.69314718055994530942;
constexpr double kSqrtHalf = 0.70710678118654752440;

// ln(v) without a libm call: frexp splits v into m * 2^e, the mantissa is
// centered into [sqrt(1/2), sqrt(2)) and ln(m) evaluated by the atanh
// series 2s(1 + s^2/3 + ...), s = (m-1)/(m+1). |s| <= 0.172 so the s^9
// term bounds the truncation error near 1e-9 — orders of magnitude inside
// the sketch's relative-accuracy budget, and record() is the hottest
// observability call in the simulator (every span and every trace).
inline double fast_ln(double v) {
  int e;
  double m = std::frexp(v, &e);  // m in [0.5, 1)
  if (m < kSqrtHalf) {
    m *= 2.0;
    --e;
  }
  const double s = (m - 1.0) / (m + 1.0);
  const double s2 = s * s;
  const double ln_m =
      2.0 * s *
      (1.0 + s2 * (1.0 / 3.0 +
                   s2 * (1.0 / 5.0 + s2 * (1.0 / 7.0 + s2 * (1.0 / 9.0)))));
  return static_cast<double>(e) * kLn2 + ln_m;
}
}  // namespace

QuantileSketch::QuantileSketch(double relative_accuracy,
                               std::size_t max_buckets)
    : alpha_(relative_accuracy),
      gamma_((1.0 + relative_accuracy) / (1.0 - relative_accuracy)),
      log_gamma_(std::log(gamma_)),
      inv_log_gamma_(1.0 / log_gamma_),
      max_buckets_(std::max<std::size_t>(max_buckets, 8)) {
  assert(relative_accuracy > 0.0 && relative_accuracy < 1.0);
}

int QuantileSketch::key_for(double value) const {
  // Bucket key k covers (gamma^(k-1), gamma^k]; any value there is within
  // alpha of the representative 2*gamma^k / (gamma + 1).
  return static_cast<int>(std::ceil(fast_ln(value) * inv_log_gamma_));
}

double QuantileSketch::representative(int key) const {
  return 2.0 * std::pow(gamma_, key) / (gamma_ + 1.0);
}

std::uint64_t& QuantileSketch::cell(int key) {
  // Dense store: counts_[i] holds the count for key base_key_ + i. Grow
  // with margin so a drifting key range doesn't reallocate per record.
  if (counts_.empty()) {
    base_key_ = key - 8;
    counts_.assign(32, 0);
  } else if (key < base_key_) {
    const std::size_t grow = static_cast<std::size_t>(base_key_ - key) + 16;
    counts_.insert(counts_.begin(), grow, 0);
    base_key_ -= static_cast<int>(grow);
  } else if (static_cast<std::size_t>(key - base_key_) >= counts_.size()) {
    const std::size_t need = static_cast<std::size_t>(key - base_key_) + 17;
    counts_.resize(need + need / 2, 0);
  }
  return counts_[static_cast<std::size_t>(key - base_key_)];
}

void QuantileSketch::record(double value, std::uint64_t n) {
  if (n == 0) return;
  const double v = value < 0.0 ? 0.0 : value;
  if (v < kMinIndexable) {
    zero_count_ += n;
  } else {
    std::uint64_t& c = cell(key_for(v));
    const bool fresh = c == 0;
    c += n;
    if (fresh) {
      ++occupied_;
      if (occupied_ > max_buckets_) collapse_lowest();
    }
  }
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  count_ += n;
  sum_ += v * static_cast<double>(n);
}

void QuantileSketch::merge(const QuantileSketch& other) {
  assert(alpha_ == other.alpha_ && "merging sketches of different accuracy");
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < other.counts_.size(); ++i) {
    if (other.counts_[i] == 0) continue;
    std::uint64_t& c = cell(other.base_key_ + static_cast<int>(i));
    if (c == 0) ++occupied_;
    c += other.counts_[i];
  }
  while (occupied_ > max_buckets_) collapse_lowest();
  zero_count_ += other.zero_count_;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void QuantileSketch::reset() {
  counts_.clear();
  base_key_ = 0;
  occupied_ = 0;
  zero_count_ = 0;
  count_ = 0;
  sum_ = 0.0;
  min_ = max_ = 0.0;
}

void QuantileSketch::collapse_lowest() {
  // Fold the lowest occupied bucket into the next one up. SLO analytics
  // reads the upper tail, so the low end is the safe place to coarsen.
  std::size_t lo = 0;
  while (lo < counts_.size() && counts_[lo] == 0) ++lo;
  std::size_t next = lo + 1;
  while (next < counts_.size() && counts_[next] == 0) ++next;
  if (next >= counts_.size()) return;  // single occupied bucket: nothing to do
  counts_[next] += counts_[lo];
  counts_[lo] = 0;
  --occupied_;
}

double QuantileSketch::percentile(double p) const {
  if (count_ == 0) return kNoSample;
  const double clamped = std::clamp(p, 0.0, 100.0);
  const auto rank = static_cast<std::uint64_t>(
      clamped / 100.0 * static_cast<double>(count_ - 1) + 0.5);
  // rank is 0-based: find the bucket holding the (rank+1)-th smallest value.
  if (rank < zero_count_) return 0.0;
  std::uint64_t seen = zero_count_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    seen += counts_[i];
    if (seen > rank) {
      // Clamp into the observed range so p0/p100 never leave [min, max].
      return std::clamp(representative(base_key_ + static_cast<int>(i)),
                        min_, max_);
    }
  }
  return max_;
}

std::uint64_t QuantileSketch::count_at_or_below(double threshold) const {
  if (count_ == 0 || threshold < 0.0) return 0;
  if (threshold >= max_) return count_;
  std::uint64_t seen = zero_count_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    if (representative(base_key_ + static_cast<int>(i)) > threshold) break;
    seen += counts_[i];
  }
  return seen;
}

}  // namespace sora::obs
