#include "obs/quantile_sketch.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace sora::obs {

namespace {
// Values below this are indistinguishable from zero for latency purposes
// (well under a nanosecond in the repo's microsecond convention) and go to
// the zero bucket; keeps the key range finite.
constexpr double kMinIndexable = 1e-9;
}  // namespace

QuantileSketch::QuantileSketch(double relative_accuracy,
                               std::size_t max_buckets)
    : alpha_(relative_accuracy),
      gamma_((1.0 + relative_accuracy) / (1.0 - relative_accuracy)),
      log_gamma_(std::log(gamma_)),
      max_buckets_(std::max<std::size_t>(max_buckets, 8)) {
  assert(relative_accuracy > 0.0 && relative_accuracy < 1.0);
}

int QuantileSketch::key_for(double value) const {
  // Bucket key k covers (gamma^(k-1), gamma^k]; any value there is within
  // alpha of the representative 2*gamma^k / (gamma + 1).
  return static_cast<int>(std::ceil(std::log(value) / log_gamma_));
}

double QuantileSketch::representative(int key) const {
  return 2.0 * std::pow(gamma_, key) / (gamma_ + 1.0);
}

void QuantileSketch::record(double value, std::uint64_t n) {
  if (n == 0) return;
  const double v = value < 0.0 ? 0.0 : value;
  if (v < kMinIndexable) {
    zero_count_ += n;
  } else {
    buckets_[key_for(v)] += n;
    collapse_if_needed();
  }
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  count_ += n;
  sum_ += v * static_cast<double>(n);
}

void QuantileSketch::merge(const QuantileSketch& other) {
  assert(alpha_ == other.alpha_ && "merging sketches of different accuracy");
  if (other.count_ == 0) return;
  for (const auto& [key, n] : other.buckets_) buckets_[key] += n;
  collapse_if_needed();
  zero_count_ += other.zero_count_;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void QuantileSketch::reset() {
  buckets_.clear();
  zero_count_ = 0;
  count_ = 0;
  sum_ = 0.0;
  min_ = max_ = 0.0;
}

void QuantileSketch::collapse_if_needed() {
  // Collapse the lowest keys together until under the cap. SLO analytics
  // reads the upper tail, so the low end is the safe place to coarsen.
  while (buckets_.size() > max_buckets_) {
    auto lowest = buckets_.begin();
    auto second = std::next(lowest);
    second->second += lowest->second;
    buckets_.erase(lowest);
  }
}

double QuantileSketch::percentile(double p) const {
  if (count_ == 0) return kNoSample;
  const double clamped = std::clamp(p, 0.0, 100.0);
  const auto rank = static_cast<std::uint64_t>(
      clamped / 100.0 * static_cast<double>(count_ - 1) + 0.5);
  // rank is 0-based: find the bucket holding the (rank+1)-th smallest value.
  if (rank < zero_count_) return 0.0;
  std::uint64_t seen = zero_count_;
  for (const auto& [key, n] : buckets_) {
    seen += n;
    if (seen > rank) {
      // Clamp into the observed range so p0/p100 never leave [min, max].
      return std::clamp(representative(key), min_, max_);
    }
  }
  return max_;
}

std::uint64_t QuantileSketch::count_at_or_below(double threshold) const {
  if (count_ == 0 || threshold < 0.0) return 0;
  if (threshold >= max_) return count_;
  std::uint64_t seen = zero_count_;
  for (const auto& [key, n] : buckets_) {
    if (representative(key) > threshold) break;
    seen += n;
  }
  return seen;
}

}  // namespace sora::obs
