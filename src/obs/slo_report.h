// Per-experiment SLO report generator.
//
// Stitches the streaming SLO analytics into one human-readable artifact:
// sketch percentiles, burn-rate summary, violation episodes (each with the
// top budget-consuming service during the episode), the per-service
// latency-budget attribution table, and the controller decisions that fired
// while episodes were open. Emitted as plain text (terminal/log friendly)
// or a self-contained HTML page (no external assets).
#pragma once

#include <ostream>
#include <string>

#include "common/time.h"

namespace sora::obs {

class QuantileSketch;
class SloMonitor;
class BudgetAttributor;
class DecisionLog;

struct SloReportInputs {
  std::string title = "SLO report";
  SimTime sla = 0;
  /// End-to-end response-time sketch in microseconds (nullable).
  const QuantileSketch* latency = nullptr;
  const SloMonitor* monitor = nullptr;          ///< nullable
  const BudgetAttributor* attribution = nullptr;  ///< nullable
  const DecisionLog* decisions = nullptr;       ///< nullable
  /// Entity name carrying the end-to-end SLO in the monitor.
  std::string e2e_entity = "e2e";
};

/// Plain-text report (fixed-width tables).
void write_slo_report_text(const SloReportInputs& in, std::ostream& os);

/// Self-contained HTML report.
void write_slo_report_html(const SloReportInputs& in, std::ostream& os);

}  // namespace sora::obs
