// Control-decision audit log.
//
// One structured record per control-plane decision point answers the
// question the raw timelines cannot: *why* did a control round do what it
// did? Soft-resource rounds (Sora/ConScale) record the full reasoning chain
// — localized critical service, propagated deadline, scatter statistics,
// fitted model diagnostics, and the adapter's action with its reason.
// Hardware rounds (FIRM/HPA/VPA) record the utilization/latency evidence
// and the scale verdict, including explicit "hold" records so quiet rounds
// are distinguishable from missing telemetry.
//
// The log is queryable in-process after a run and exportable as JSONL (one
// record per line) for offline analysis.
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "common/time.h"

namespace sora::obs {

struct ControlDecisionRecord {
  SimTime at = 0;
  std::string controller;  ///< "sora", "conscale", "firm", "hpa", "vpa"
  std::uint64_t round = 0;

  /// What the decision acted on: a knob label ("cart/threads") for
  /// soft-resource rounds, a service name for hardware rounds.
  std::string target;

  // -- monitoring evidence ----------------------------------------------------
  std::string critical_service;  ///< localization verdict ("" = none)
  double critical_utilization = 0.0;
  double critical_pcc = 0.0;
  std::size_t traces_analyzed = 0;
  double observed_p99_ms = 0.0;  ///< hardware scalers' SLO evidence
  double observed_utilization = 0.0;

  // -- deadline propagation (soft rounds) -------------------------------------
  bool deadline_valid = false;
  SimTime rt_threshold = 0;      ///< propagated local deadline
  SimTime mean_upstream_pt = 0;  ///< mean upstream processing time

  // -- estimation (soft rounds) -----------------------------------------------
  bool estimate_valid = false;
  std::size_t scatter_points = 0;  ///< raw samples fed to the model
  int recommended = 0;
  double knee_concurrency = 0.0;
  double knee_value = 0.0;
  double peak_concurrency = 0.0;
  double peak_value = 0.0;
  int degree_used = 0;
  double r_squared = 0.0;
  double good_fraction = 1.0;
  std::string estimate_failure;  ///< non-empty when !estimate_valid

  // -- SLO evidence (slo-monitor episode records) -------------------------------
  double fast_burn = 0.0;   ///< fast-window burn rate at the decision point
  double slow_burn = 0.0;   ///< slow-window burn rate
  double peak_burn = 0.0;   ///< peak fast burn over the episode (close records)
  SimTime episode_duration = 0;  ///< episode length (close records)

  // -- admission control ---------------------------------------------------------
  /// Admission policy on controller=="admission" records (token_bucket,
  /// aimd, gradient, knee_coupled); empty otherwise.
  std::string policy;
  double admission_limit = 0.0;  ///< effective concurrency/rate limit
  SimTime remaining_deadline = 0;  ///< deadline - now at the decision (0=none)
  std::string priority;            ///< "high" / "batch"

  // -- bi-level / gradient-descent controllers ----------------------------------
  /// Per-service latency target assigned by a global credit allocator
  /// (autothrottle records); 0 when the record carries no target.
  double latency_target_ms = 0.0;
  /// Objective value the allocator/gradient stepper evaluated this round
  /// (lsram records); meaningful only when objective_valid is set.
  double objective = 0.0;
  bool objective_valid = false;

  // -- fault injection ----------------------------------------------------------
  /// Fault kind on controller=="fault" records (crash_instance,
  /// cpu_limit_step, span_dropout, span_delay, scatter_dropout,
  /// control_stall); empty on ordinary controller records.
  std::string fault_kind;

  // -- causal profiling -----------------------------------------------------------
  /// Ranked causal verdict on controller=="causal" records: the what-if
  /// label whose effect the record describes, the measured tail-latency
  /// delta, and the full service ranking ("cart>front-end>..."). `target`
  /// carries the causal pick, `critical_service` the Pearson pick the round
  /// cross-validated against.
  std::string causal_perturbation;
  double causal_delta_p99_ms = 0.0;
  std::string causal_rank;

  // -- runtime control (ctl plane) ----------------------------------------------
  /// The verbatim command line on controller=="ctl" records. The pair
  /// (at, command) is the replay script: re-applying these at the same
  /// safepoints reproduces the run byte-identically.
  std::string command;

  // -- verdict ------------------------------------------------------------------
  /// "applied", "explored", "proportional", "none", "stalled" (soft);
  /// "scale_up", "scale_down", "scale_out", "scale_in", "hold", "stalled"
  /// (hardware); "episode_start", "episode_end" (slo-monitor); "crash",
  /// "crash_refused", "restart", "cpu_step", "fault_start", "fault_end"
  /// (fault injector).
  std::string action;
  std::string reason;  ///< human-readable why
  int old_size = 0;    ///< pool per-replica size (soft)
  int new_size = 0;
  double old_cores = 0.0;  ///< CPU limit (hardware vertical)
  double new_cores = 0.0;
  int old_replicas = 0;  ///< replica count (hardware horizontal)
  int new_replicas = 0;

  /// Render this record as one JSON object (the JSONL line body).
  std::string to_json() const;
};

class DecisionLog {
 public:
  void append(ControlDecisionRecord record) {
    if (!buffers_.empty()) {
      buffers_[static_cast<std::size_t>(lane_of_())].push_back(
          std::move(record));
      return;
    }
    records_.push_back(std::move(record));
  }

  /// Sharded runs: route appends into per-lane buffers so concurrent lanes
  /// never touch the shared record vector. `lanes` is the total lane count
  /// (shards + 1; the LAST buffer is the global lane's) and `lane_of`
  /// returns the calling context's lane index. Buffers merge into the main
  /// record stream at flush_shard_buffers(), which the harness wires to the
  /// simulator's window barrier.
  void enable_shard_buffers(int lanes, std::function<int()> lane_of);

  /// Merge buffered records into the main stream, ordered by
  /// (at, global-lane-first, target). The key is invariant across shard
  /// counts: a target (service or knob) lives on exactly one lane, so
  /// same-(at, target) records come from one buffer and keep their
  /// lane-local append order; global records at a window edge W really did
  /// execute before shard events at W. Idempotent; safe to call anytime the
  /// shard lanes are quiesced (a barrier, or outside a run).
  void flush_shard_buffers() const;

  const std::vector<ControlDecisionRecord>& records() const {
    flush_shard_buffers();
    return records_;
  }
  std::size_t size() const {
    flush_shard_buffers();
    return records_.size();
  }
  bool empty() const { return size() == 0; }
  void clear() {
    for (auto& b : buffers_) b.clear();
    records_.clear();
  }

  /// All records from one controller, in order.
  std::vector<const ControlDecisionRecord*> by_controller(
      const std::string& controller) const;
  /// Records whose action matches (e.g. every "applied").
  std::vector<const ControlDecisionRecord*> by_action(
      const std::string& action) const;
  /// Count of records with the given action.
  std::size_t count_action(const std::string& action) const;

  /// One JSON object per line, in append order.
  void write_jsonl(std::ostream& os) const;

 private:
  // Mutable so the const read accessors can drain stragglers (e.g. records
  // appended after the run ended, which land in the global buffer).
  mutable std::vector<ControlDecisionRecord> records_;
  mutable std::vector<std::vector<ControlDecisionRecord>> buffers_;
  std::function<int()> lane_of_;
};

}  // namespace sora::obs
