// Chrome trace_event (Perfetto-compatible) export of request traces.
//
// Converts the TraceWarehouse's retained spans into the Trace Event Format
// consumed by chrome://tracing, https://ui.perfetto.dev and speedscope: one
// complete ("X") event per service visit, grouped so the viewer shows one
// track ("process") per service with replicas as threads. Span arguments
// carry the SCG-relevant decomposition — queueing before admission,
// downstream wait, and own processing time — so the exact quantities the
// controller reasons about are inspectable per request in the viewer.
//
// SimTime is already microseconds, the unit the format expects; no scaling.
#pragma once

#include <functional>
#include <ostream>
#include <string>

#include "common/ids.h"
#include "common/time.h"
#include "trace/span.h"
#include "trace/warehouse.h"

namespace sora::obs {

/// Resolve a ServiceId to a display name (e.g. Application::service_name).
using ServiceNamer = std::function<std::string(ServiceId)>;

struct ChromeTraceOptions {
  /// Export only traces completed in [from, to].
  SimTime from = 0;
  SimTime to = kSimTimeNever;
  /// Cap on exported traces (0 = no cap); oldest first, like the warehouse.
  std::size_t max_traces = 0;
};

/// Write one complete Chrome trace JSON document for every retained trace
/// in the window. Returns the number of traces exported.
std::size_t export_chrome_trace(const TraceWarehouse& warehouse,
                                const ServiceNamer& namer, std::ostream& os,
                                ChromeTraceOptions options = {});

/// Same, over an explicit list of traces (tests, custom pipelines).
std::size_t export_chrome_trace(const std::vector<Trace>& traces,
                                const ServiceNamer& namer, std::ostream& os,
                                ChromeTraceOptions options = {});

}  // namespace sora::obs
