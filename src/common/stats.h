// Small statistics helpers shared across the project: moments, Pearson
// correlation (critical-service localization), MAPE (Table 1), percentiles.
#pragma once

#include <cmath>
#include <cstddef>
#include <limits>
#include <span>
#include <vector>

namespace sora {

/// Sentinel returned by every double-valued percentile/quantile API when the
/// underlying sample set is empty ("no sample" is distinguishable from a
/// measured 0). NaN propagates through arithmetic, compares false against
/// any threshold, and the JSON exporters render it as null.
inline constexpr double kNoSample = std::numeric_limits<double>::quiet_NaN();

/// True when `v` is the empty-input sentinel of a percentile query.
inline bool is_no_sample(double v) { return std::isnan(v); }

/// Arithmetic mean; 0 for an empty span.
double mean(std::span<const double> xs);

/// Population variance; 0 for fewer than 2 elements.
double variance(std::span<const double> xs);

double stddev(std::span<const double> xs);

/// Pearson correlation coefficient of two equal-length series.
/// Returns 0 when either series is constant or the series are empty.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Mean absolute percentage error of predictions vs. actuals (in percent).
/// Pairs whose actual value is 0 are skipped.
double mape(std::span<const double> actual, std::span<const double> predicted);

/// p-th percentile (p in [0,100]) by linear interpolation of the sorted
/// sample. Returns kNoSample for an empty sample. The input is copied, not
/// mutated.
double percentile(std::span<const double> xs, double p);

/// Percentile of an already-sorted sample (no copy). Returns kNoSample for
/// an empty sample.
double percentile_sorted(std::span<const double> sorted, double p);

/// Streaming mean/variance accumulator (Welford).
class RunningStats {
 public:
  void add(double x);
  void reset();

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_) : 0.0; }
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

}  // namespace sora
