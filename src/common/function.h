// Move-only type-erased callable with small-buffer optimization.
//
// The event loop stores one callback per scheduled event, and the request
// path chains continuations through pools, CPU schedulers and the network.
// std::function is the wrong tool there: its inline buffer (16 bytes in
// libstdc++, copy-constructible payloads only) forces a heap allocation for
// almost every capture list on the hot path, and it requires copyability.
// UniqueFunction stores any nothrow-movable callable of up to kInlineSize
// bytes inline and only falls back to the heap beyond that.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace sora {

/// Move-only `void()` callable. Callables up to kInlineSize bytes with
/// nothrow move construction live inline; larger ones are heap-allocated.
class UniqueFunction {
 public:
  /// Sized for the request-path continuations (the largest captures
  /// this + visit + a handful of ids — see ServiceInstance::issue_call).
  static constexpr std::size_t kInlineSize = 64;

  UniqueFunction() = default;
  UniqueFunction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, UniqueFunction> &&
                                        std::is_invocable_r_v<void, D&>>>
  UniqueFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    if constexpr (sizeof(D) <= kInlineSize &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      *reinterpret_cast<D**>(storage_) = new D(std::forward<F>(f));
      ops_ = &kHeapOps<D>;
    }
  }

  UniqueFunction(UniqueFunction&& other) noexcept { move_from(other); }
  UniqueFunction& operator=(UniqueFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  UniqueFunction& operator=(std::nullptr_t) {
    reset();
    return *this;
  }
  UniqueFunction(const UniqueFunction&) = delete;
  UniqueFunction& operator=(const UniqueFunction&) = delete;
  ~UniqueFunction() { reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->invoke(storage_); }

  /// Destroy the held callable (and free its captures) immediately.
  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    /// Move-construct dst's payload from src's and destroy src's.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void* storage);
  };

  template <typename D>
  static constexpr Ops kInlineOps = {
      [](void* s) { (*static_cast<D*>(s))(); },
      [](void* dst, void* src) {
        D* from = static_cast<D*>(src);
        ::new (dst) D(std::move(*from));
        from->~D();
      },
      [](void* s) { static_cast<D*>(s)->~D(); },
  };

  template <typename D>
  static constexpr Ops kHeapOps = {
      [](void* s) { (**reinterpret_cast<D**>(s))(); },
      [](void* dst, void* src) {
        *reinterpret_cast<D**>(dst) = *reinterpret_cast<D**>(src);
      },
      [](void* s) { delete *reinterpret_cast<D**>(s); },
  };

  void move_from(UniqueFunction& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char storage_[kInlineSize];
};

}  // namespace sora
