#include "common/log.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

namespace sora {

namespace {
/// Initial level comes from SORA_LOG_LEVEL (debug|info|warn|error|off),
/// defaulting to warn, so bench/example binaries can be made verbose
/// without a rebuild.
LogLevel level_from_env() {
  const char* env = std::getenv("SORA_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kWarn;
  const std::string_view v(env);
  if (v == "debug") return LogLevel::kDebug;
  if (v == "info") return LogLevel::kInfo;
  if (v == "warn") return LogLevel::kWarn;
  if (v == "error") return LogLevel::kError;
  if (v == "off") return LogLevel::kOff;
  return LogLevel::kWarn;
}

std::atomic<LogLevel> g_level = level_from_env();
// Thread-local: one simulator clock per sweep-worker thread.
thread_local const void* t_clock_ctx = nullptr;
thread_local LogClockFn t_clock_fn = nullptr;

std::string_view level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

// -- log ring ----------------------------------------------------------------

constexpr std::size_t kRingSlots = 512;  // power of two
constexpr std::size_t kRingLineCap = 240;

struct RingSlot {
  // Odd while a writer is copying, 2*(claim index)+2 once complete. Readers
  // re-check after copying and discard torn slots.
  std::atomic<std::uint64_t> seq{0};
  std::uint16_t len = 0;
  char text[kRingLineCap];
};

RingSlot g_ring[kRingSlots];
std::atomic<std::uint64_t> g_ring_head{0};  // next claim index

void ring_store(std::string_view line) {
  const std::uint64_t idx = g_ring_head.fetch_add(1, std::memory_order_relaxed);
  RingSlot& slot = g_ring[idx & (kRingSlots - 1)];
  const std::uint16_t len =
      static_cast<std::uint16_t>(std::min(line.size(), kRingLineCap));
  slot.seq.store(2 * idx + 1, std::memory_order_release);
  std::memcpy(slot.text, line.data(), len);
  slot.len = len;
  slot.seq.store(2 * idx + 2, std::memory_order_release);
}
}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }
void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

std::string_view log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      return "off";
  }
  return "?";
}

bool parse_log_level(std::string_view name, LogLevel* out) {
  if (name == "debug") *out = LogLevel::kDebug;
  else if (name == "info") *out = LogLevel::kInfo;
  else if (name == "warn") *out = LogLevel::kWarn;
  else if (name == "error") *out = LogLevel::kError;
  else if (name == "off") *out = LogLevel::kOff;
  else return false;
  return true;
}

std::size_t log_ring_capacity() { return kRingSlots; }

std::vector<std::string> log_ring_recent(std::size_t max_lines) {
  const std::uint64_t head = g_ring_head.load(std::memory_order_acquire);
  const std::uint64_t available =
      std::min<std::uint64_t>(head, kRingSlots);
  const std::uint64_t want = std::min<std::uint64_t>(max_lines, available);
  std::vector<std::string> out;
  out.reserve(want);
  for (std::uint64_t i = head - want; i < head; ++i) {
    RingSlot& slot = g_ring[i & (kRingSlots - 1)];
    const std::uint64_t s1 = slot.seq.load(std::memory_order_acquire);
    if (s1 != 2 * i + 2) continue;  // overwritten (lapped) or mid-write
    char buf[kRingLineCap];
    const std::uint16_t len = slot.len;
    if (len > kRingLineCap) continue;
    std::memcpy(buf, slot.text, len);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != s1) continue;  // torn
    out.emplace_back(buf, len);
  }
  return out;
}

std::uint64_t log_ring_total() {
  return g_ring_head.load(std::memory_order_acquire);
}

void log_ring_clear() {
  // Tests only: not safe against concurrent writers.
  g_ring_head.store(0, std::memory_order_release);
  for (RingSlot& slot : g_ring) {
    slot.seq.store(0, std::memory_order_release);
    slot.len = 0;
  }
}

void set_log_clock(const void* ctx, LogClockFn fn) {
  t_clock_ctx = ctx;
  t_clock_fn = fn;
}

void clear_log_clock(const void* ctx) {
  if (t_clock_ctx == ctx) {
    t_clock_ctx = nullptr;
    t_clock_fn = nullptr;
  }
}

bool log_clock_now(SimTime* out) {
  if (t_clock_fn == nullptr) return false;
  *out = t_clock_fn(t_clock_ctx);
  return true;
}

namespace detail {
void log_line(LogLevel level, std::string_view msg) {
  if (level < log_level()) return;
  // Compose the whole line first and emit it with a single write so lines
  // from concurrent sweep workers never interleave mid-line.
  std::string line;
  line.reserve(msg.size() + 24);
  line += '[';
  line += level_name(level);
  SimTime now = 0;
  if (log_clock_now(&now)) {
    char stamp[32];
    std::snprintf(stamp, sizeof(stamp), " %.3fs", to_sec(now));
    line += stamp;
  }
  line += "] ";
  line += msg;
  // Retain the line (newline-free) in the in-process ring for /logz before
  // it goes to the sink.
  ring_store(line);
  line += '\n';
  // std::cerr (not raw stderr) so tests and embedders can redirect rdbuf.
  std::cerr.write(line.data(), static_cast<std::streamsize>(line.size()));
  std::cerr.flush();
}
}  // namespace detail

}  // namespace sora
