#include "common/log.h"

namespace sora {

namespace {
LogLevel g_level = LogLevel::kWarn;

std::string_view level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel log_level() { return g_level; }
void set_log_level(LogLevel level) { g_level = level; }

namespace detail {
void log_line(LogLevel level, std::string_view msg) {
  if (level < g_level) return;
  std::cerr << "[" << level_name(level) << "] " << msg << '\n';
}
}  // namespace detail

}  // namespace sora
