#include "common/log.h"

#include <cstdio>
#include <cstdlib>

namespace sora {

namespace {
/// Initial level comes from SORA_LOG_LEVEL (debug|info|warn|error|off),
/// defaulting to warn, so bench/example binaries can be made verbose
/// without a rebuild.
LogLevel level_from_env() {
  const char* env = std::getenv("SORA_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kWarn;
  const std::string_view v(env);
  if (v == "debug") return LogLevel::kDebug;
  if (v == "info") return LogLevel::kInfo;
  if (v == "warn") return LogLevel::kWarn;
  if (v == "error") return LogLevel::kError;
  if (v == "off") return LogLevel::kOff;
  return LogLevel::kWarn;
}

LogLevel g_level = level_from_env();
const void* g_clock_ctx = nullptr;
LogClockFn g_clock_fn = nullptr;

std::string_view level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel log_level() { return g_level; }
void set_log_level(LogLevel level) { g_level = level; }

void set_log_clock(const void* ctx, LogClockFn fn) {
  g_clock_ctx = ctx;
  g_clock_fn = fn;
}

void clear_log_clock(const void* ctx) {
  if (g_clock_ctx == ctx) {
    g_clock_ctx = nullptr;
    g_clock_fn = nullptr;
  }
}

bool log_clock_now(SimTime* out) {
  if (g_clock_fn == nullptr) return false;
  *out = g_clock_fn(g_clock_ctx);
  return true;
}

namespace detail {
void log_line(LogLevel level, std::string_view msg) {
  if (level < g_level) return;
  SimTime now = 0;
  if (log_clock_now(&now)) {
    char stamp[32];
    std::snprintf(stamp, sizeof(stamp), " %.3fs", to_sec(now));
    std::cerr << "[" << level_name(level) << stamp << "] " << msg << '\n';
  } else {
    std::cerr << "[" << level_name(level) << "] " << msg << '\n';
  }
}
}  // namespace detail

}  // namespace sora
