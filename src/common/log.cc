#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

namespace sora {

namespace {
/// Initial level comes from SORA_LOG_LEVEL (debug|info|warn|error|off),
/// defaulting to warn, so bench/example binaries can be made verbose
/// without a rebuild.
LogLevel level_from_env() {
  const char* env = std::getenv("SORA_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kWarn;
  const std::string_view v(env);
  if (v == "debug") return LogLevel::kDebug;
  if (v == "info") return LogLevel::kInfo;
  if (v == "warn") return LogLevel::kWarn;
  if (v == "error") return LogLevel::kError;
  if (v == "off") return LogLevel::kOff;
  return LogLevel::kWarn;
}

std::atomic<LogLevel> g_level = level_from_env();
// Thread-local: one simulator clock per sweep-worker thread.
thread_local const void* t_clock_ctx = nullptr;
thread_local LogClockFn t_clock_fn = nullptr;

std::string_view level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }
void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

void set_log_clock(const void* ctx, LogClockFn fn) {
  t_clock_ctx = ctx;
  t_clock_fn = fn;
}

void clear_log_clock(const void* ctx) {
  if (t_clock_ctx == ctx) {
    t_clock_ctx = nullptr;
    t_clock_fn = nullptr;
  }
}

bool log_clock_now(SimTime* out) {
  if (t_clock_fn == nullptr) return false;
  *out = t_clock_fn(t_clock_ctx);
  return true;
}

namespace detail {
void log_line(LogLevel level, std::string_view msg) {
  if (level < log_level()) return;
  // Compose the whole line first and emit it with a single write so lines
  // from concurrent sweep workers never interleave mid-line.
  std::string line;
  line.reserve(msg.size() + 24);
  line += '[';
  line += level_name(level);
  SimTime now = 0;
  if (log_clock_now(&now)) {
    char stamp[32];
    std::snprintf(stamp, sizeof(stamp), " %.3fs", to_sec(now));
    line += stamp;
  }
  line += "] ";
  line += msg;
  line += '\n';
  // std::cerr (not raw stderr) so tests and embedders can redirect rdbuf.
  std::cerr.write(line.data(), static_cast<std::streamsize>(line.size()));
  std::cerr.flush();
}
}  // namespace detail

}  // namespace sora
