// Least-squares polynomial fitting.
//
// The SCG model (Section 3.3 of the paper) fits a smoothing polynomial to
// the concurrency-goodput scatter before running the Kneedle detector. We
// normalize x into [0,1] before solving the normal equations so that the
// Vandermonde system stays well-conditioned up to the degrees the paper uses
// (5-8, capped at ~12 here).
#pragma once

#include <span>
#include <vector>

namespace sora {

/// A fitted polynomial y = sum_i coeffs[i] * t^i where t = (x - x_offset) /
/// x_scale is the normalized abscissa.
class Polynomial {
 public:
  Polynomial() = default;
  Polynomial(std::vector<double> coeffs, double x_offset, double x_scale);

  double operator()(double x) const;
  /// First derivative with respect to x (not t).
  double derivative(double x) const;

  int degree() const { return static_cast<int>(coeffs_.size()) - 1; }
  const std::vector<double>& coefficients() const { return coeffs_; }

 private:
  std::vector<double> coeffs_;
  double x_offset_ = 0.0;
  double x_scale_ = 1.0;
};

struct PolyFitResult {
  Polynomial poly;
  double rss = 0.0;        ///< Residual sum of squares.
  double r_squared = 0.0;  ///< Coefficient of determination (1 = perfect).
  bool ok = false;         ///< False if the system was singular/underdetermined.
};

/// Fit a degree-`degree` polynomial to (xs[i], ys[i]) by least squares.
/// Requires xs.size() == ys.size() and at least degree+1 distinct points.
PolyFitResult polyfit(std::span<const double> xs, std::span<const double> ys,
                      int degree);

}  // namespace sora
