// Deterministic pseudo-random number generation.
//
// Every stochastic component of the simulator owns an Rng seeded from the
// experiment seed, so a run is fully reproducible. The generator is
// xoshiro256++ (public domain, Blackman & Vigna), seeded via SplitMix64.
#pragma once

#include <cmath>
#include <cstdint>

namespace sora {

/// xoshiro256++ generator with distribution helpers.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into the 256-bit state.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Derive an independent child generator (for per-component streams).
  Rng fork() { return Rng(next_u64()); }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_int(std::uint64_t n) { return next_u64() % n; }

  /// Exponential with the given mean (> 0).
  double exponential(double mean) {
    double u;
    do {
      u = uniform();
    } while (u <= 0.0);
    return -mean * std::log(u);
  }

  /// Standard normal via Marsaglia polar method.
  double normal() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double m = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * m;
    have_spare_ = true;
    return u * m;
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Lognormal parameterized by its own mean and coefficient of variation
  /// (cv = stddev/mean). Used for CPU service demands: right-skewed, as
  /// observed for real microservice processing times.
  double lognormal_mean_cv(double mean, double cv) {
    if (cv <= 0.0) return mean;
    const double sigma2 = std::log(1.0 + cv * cv);
    const double mu = std::log(mean) - 0.5 * sigma2;
    return std::exp(mu + std::sqrt(sigma2) * normal());
  }

  /// Poisson-distributed count with the given mean (inversion for small
  /// means, normal approximation for large).
  std::uint64_t poisson(double mean) {
    if (mean <= 0.0) return 0;
    if (mean < 30.0) {
      const double l = std::exp(-mean);
      std::uint64_t k = 0;
      double p = 1.0;
      do {
        ++k;
        p *= uniform();
      } while (p > l);
      return k - 1;
    }
    const double v = normal(mean, std::sqrt(mean));
    return v <= 0.0 ? 0 : static_cast<std::uint64_t>(v + 0.5);
  }

  /// Lognormal with precomputed parameters (see LognormalSampler): one exp
  /// plus a normal draw per sample, no per-sample log/sqrt.
  double lognormal_musigma(double mu, double sigma) {
    return std::exp(mu + sigma * normal());
  }

  /// Bounded Pareto on [lo, hi] with shape alpha (heavy-tailed demands).
  double bounded_pareto(double alpha, double lo, double hi) {
    const double u = uniform();
    const double la = std::pow(lo, alpha);
    const double ha = std::pow(hi, alpha);
    return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  bool have_spare_ = false;
  double spare_ = 0.0;
};

/// Precomputed lognormal(mean, cv) parameters for hot sampling loops.
/// sample(rng) draws the exact same value lognormal_mean_cv(mean, cv) would
/// (identical expression tree), but the two logs and the sqrt are paid once
/// here instead of per sample.
struct LognormalSampler {
  double mean = 0.0;
  double mu = 0.0;
  double sigma = 0.0;
  bool degenerate = true;  ///< cv <= 0: sample() returns mean exactly.

  LognormalSampler() = default;
  LognormalSampler(double mean_in, double cv) : mean(mean_in) {
    if (cv > 0.0) {
      const double sigma2 = std::log(1.0 + cv * cv);
      mu = std::log(mean) - 0.5 * sigma2;
      sigma = std::sqrt(sigma2);
      degenerate = false;
    }
  }

  double sample(Rng& rng) const {
    return degenerate ? mean : rng.lognormal_musigma(mu, sigma);
  }
};

}  // namespace sora
