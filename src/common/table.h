// Console table / CSV rendering used by the benchmark harness to print
// paper-style tables and figure series.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace sora {

/// A simple column-aligned text table. Cells are strings; numeric helpers
/// format with fixed precision.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Begin a new row; subsequent add_cell calls append to it.
  TextTable& add_row(std::vector<std::string> cells);

  /// Render with aligned columns to `out`.
  void print(std::ostream& out) const;

  /// Render as CSV (no alignment, comma-separated, quoted when needed).
  void print_csv(std::ostream& out) const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with `precision` digits after the point.
std::string fmt(double v, int precision = 2);
/// Format an integer-valued count.
std::string fmt_count(std::uint64_t v);

}  // namespace sora
