// Latency histograms.
//
// LatencyHistogram is a log-bucketed (HdrHistogram-style) recorder of SimTime
// durations with cheap percentile queries — used for p95/p99 reporting
// (Table 2). LinearHistogram buckets values on a fixed grid — used to render
// the response-time distribution plots (Figure 4).
#pragma once

#include <cstdint>
#include <vector>

#include "common/time.h"

namespace sora {

/// Sentinel returned by SimTime-valued percentile queries on an empty
/// histogram (the SimTime counterpart of common::kNoSample; durations are
/// never negative, so -1 is unambiguous).
inline constexpr SimTime kNoSampleTime = -1;

/// Log-bucketed histogram over non-negative durations in microseconds.
/// Buckets have <= `1/2^sub_bits` relative width, giving bounded relative
/// error on percentile queries.
class LatencyHistogram {
 public:
  /// sub_bits controls precision: each power-of-two range is split into
  /// 2^sub_bits linear sub-buckets (default ~1.5% relative error).
  explicit LatencyHistogram(int sub_bits = 6);

  void record(SimTime value);
  /// Merge another histogram (same sub_bits) into this one.
  void merge(const LatencyHistogram& other);
  void reset();

  std::uint64_t count() const { return count_; }
  SimTime min() const { return count_ ? min_ : 0; }
  SimTime max() const { return count_ ? max_ : 0; }
  double mean() const;

  /// p in [0, 100]. Returns a representative value (bucket midpoint), or
  /// kNoSampleTime when the histogram is empty.
  SimTime percentile(double p) const;

  /// Number of recorded values <= threshold (approximate at bucket
  /// granularity, exact for the min/max tracked extremes).
  std::uint64_t count_at_or_below(SimTime threshold) const;

 private:
  std::size_t bucket_index(std::uint64_t v) const;
  std::uint64_t bucket_low(std::size_t idx) const;
  std::uint64_t bucket_high(std::size_t idx) const;

  int sub_bits_;
  std::uint64_t sub_count_;  // 2^sub_bits
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  SimTime min_ = 0;
  SimTime max_ = 0;
};

/// Fixed-width histogram over [0, bucket_width * num_buckets); values beyond
/// the last bucket are clamped into it.
class LinearHistogram {
 public:
  LinearHistogram(double bucket_width, std::size_t num_buckets);

  void record(double value);
  /// Record `n` occurrences of `value` at once (used when rebuilding a
  /// distribution from pre-aggregated counts, e.g. a quantile sketch).
  void record_n(double value, std::uint64_t n);
  void reset();

  std::size_t num_buckets() const { return counts_.size(); }
  double bucket_width() const { return width_; }
  std::uint64_t bucket_count(std::size_t i) const { return counts_[i]; }
  /// Midpoint of bucket i.
  double bucket_center(std::size_t i) const;
  std::uint64_t total() const { return total_; }

 private:
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace sora
