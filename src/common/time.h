// Simulation time primitives.
//
// All simulation timestamps and durations are expressed as SimTime, a signed
// 64-bit count of microseconds since the start of the simulation. A signed
// type is used so that durations (differences of timestamps) are expressible
// in the same type without conversion pitfalls.
#pragma once

#include <cstdint>

namespace sora {

/// Microseconds since simulation start (timestamps) or a span of
/// microseconds (durations).
using SimTime = std::int64_t;

/// Sentinel meaning "no deadline" / "never".
inline constexpr SimTime kSimTimeNever = INT64_MAX;

// -- Duration constructors ---------------------------------------------------

constexpr SimTime usec(std::int64_t n) { return n; }
constexpr SimTime msec(std::int64_t n) { return n * 1000; }
constexpr SimTime sec(std::int64_t n) { return n * 1'000'000; }
constexpr SimTime minutes(std::int64_t n) { return n * 60'000'000; }

/// Fractional seconds to SimTime (rounds toward zero).
constexpr SimTime sec_f(double s) { return static_cast<SimTime>(s * 1e6); }
/// Fractional milliseconds to SimTime (rounds toward zero).
constexpr SimTime msec_f(double ms) { return static_cast<SimTime>(ms * 1e3); }

// -- Conversions back to floating point --------------------------------------

constexpr double to_sec(SimTime t) { return static_cast<double>(t) / 1e6; }
constexpr double to_msec(SimTime t) { return static_cast<double>(t) / 1e3; }
constexpr double to_usec(SimTime t) { return static_cast<double>(t); }

}  // namespace sora
