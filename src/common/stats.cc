#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace sora {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double pearson(std::span<const double> xs, std::span<const double> ys) {
  const std::size_t n = std::min(xs.size(), ys.size());
  if (n < 2) return 0.0;
  double mx = 0.0, my = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += xs[i];
    my += ys[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double mape(std::span<const double> actual, std::span<const double> predicted) {
  const std::size_t n = std::min(actual.size(), predicted.size());
  double total = 0.0;
  std::size_t counted = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (actual[i] == 0.0) continue;
    total += std::abs((actual[i] - predicted[i]) / actual[i]);
    ++counted;
  }
  return counted ? 100.0 * total / static_cast<double>(counted) : 0.0;
}

double percentile_sorted(std::span<const double> sorted, double p) {
  if (sorted.empty()) return kNoSample;
  if (sorted.size() == 1) return sorted[0];
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) return kNoSample;
  std::vector<double> copy(xs.begin(), xs.end());
  std::sort(copy.begin(), copy.end());
  return percentile_sorted(copy, p);
}

void RunningStats::add(double x) {
  ++n_;
  sum_ += x;
  if (n_ == 1) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace sora
