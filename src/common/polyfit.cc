#include "common/polyfit.h"

#include <algorithm>
#include <cmath>
#include <cstddef>

namespace sora {

Polynomial::Polynomial(std::vector<double> coeffs, double x_offset,
                       double x_scale)
    : coeffs_(std::move(coeffs)), x_offset_(x_offset), x_scale_(x_scale) {
  if (x_scale_ == 0.0) x_scale_ = 1.0;
}

double Polynomial::operator()(double x) const {
  const double t = (x - x_offset_) / x_scale_;
  // Horner evaluation.
  double y = 0.0;
  for (auto it = coeffs_.rbegin(); it != coeffs_.rend(); ++it) {
    y = y * t + *it;
  }
  return y;
}

double Polynomial::derivative(double x) const {
  const double t = (x - x_offset_) / x_scale_;
  double dy = 0.0;
  for (std::size_t i = coeffs_.size(); i-- > 1;) {
    dy = dy * t + static_cast<double>(i) * coeffs_[i];
  }
  return dy / x_scale_;
}

namespace {

/// Solve the linear system a*x = b in place with partial pivoting.
/// Returns false if the matrix is (numerically) singular.
bool solve_linear(std::vector<std::vector<double>>& a, std::vector<double>& b) {
  const std::size_t n = a.size();
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < n; ++row) {
      if (std::abs(a[row][col]) > std::abs(a[pivot][col])) pivot = row;
    }
    if (std::abs(a[pivot][col]) < 1e-12) return false;
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    for (std::size_t row = col + 1; row < n; ++row) {
      const double f = a[row][col] / a[col][col];
      if (f == 0.0) continue;
      for (std::size_t k = col; k < n; ++k) a[row][k] -= f * a[col][k];
      b[row] -= f * b[col];
    }
  }
  for (std::size_t col = n; col-- > 0;) {
    double s = b[col];
    for (std::size_t k = col + 1; k < n; ++k) s -= a[col][k] * b[k];
    b[col] = s / a[col][col];
  }
  return true;
}

}  // namespace

PolyFitResult polyfit(std::span<const double> xs, std::span<const double> ys,
                      int degree) {
  PolyFitResult result;
  const std::size_t n = std::min(xs.size(), ys.size());
  if (degree < 0 || n < static_cast<std::size_t>(degree) + 1) return result;

  const auto [min_it, max_it] = std::minmax_element(xs.begin(), xs.end());
  const double x_offset = *min_it;
  const double x_scale = (*max_it - *min_it) > 0 ? (*max_it - *min_it) : 1.0;

  const std::size_t m = static_cast<std::size_t>(degree) + 1;
  // Normal equations: (V^T V) c = V^T y with V the normalized Vandermonde.
  std::vector<std::vector<double>> ata(m, std::vector<double>(m, 0.0));
  std::vector<double> aty(m, 0.0);
  std::vector<double> powers(2 * m - 1, 0.0);

  for (std::size_t i = 0; i < n; ++i) {
    const double t = (xs[i] - x_offset) / x_scale;
    double p = 1.0;
    std::vector<double> tp(m);
    for (std::size_t j = 0; j < m; ++j) {
      tp[j] = p;
      p *= t;
    }
    for (std::size_t j = 0; j < m; ++j) {
      aty[j] += tp[j] * ys[i];
      for (std::size_t k = 0; k < m; ++k) ata[j][k] += tp[j] * tp[k];
    }
  }
  (void)powers;

  if (!solve_linear(ata, aty)) return result;

  result.poly = Polynomial(std::move(aty), x_offset, x_scale);
  double mean_y = 0.0;
  for (std::size_t i = 0; i < n; ++i) mean_y += ys[i];
  mean_y /= static_cast<double>(n);
  double tss = 0.0, rss = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double fit = result.poly(xs[i]);
    rss += (ys[i] - fit) * (ys[i] - fit);
    tss += (ys[i] - mean_y) * (ys[i] - mean_y);
  }
  result.rss = rss;
  result.r_squared = tss > 0.0 ? 1.0 - rss / tss : 1.0;
  result.ok = true;
  return result;
}

}  // namespace sora
