// Minimal leveled logging for the simulator and framework components.
// Defaults to WARN so benchmark output stays clean; tests and examples can
// raise verbosity.
//
// Every line is prefixed with its level tag, and — when a simulator has
// installed a log clock — the current sim time, so interleaved control-loop
// logs are attributable:
//
//   [INFO 15.000s] adapter: cart/threads 5 -> 12 (knee 9.6)
#pragma once

#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/time.h"

namespace sora {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are discarded.
LogLevel log_level();
void set_log_level(LogLevel level);

/// Install a sim-time source for log timestamps. The registration slot is
/// thread-local: each thread sees the clock of the Simulator running on it,
/// so concurrent sweep workers (harness::SweepRunner) never clobber each
/// other's timestamps. `ctx` identifies the owner (the Simulator registers
/// itself on construction); clear_log_clock(ctx) is a no-op if a different
/// owner has since installed its own clock on the same thread, so
/// short-lived simulators never tear down a longer-lived one's clock.
using LogClockFn = SimTime (*)(const void* ctx);
void set_log_clock(const void* ctx, LogClockFn fn);
void clear_log_clock(const void* ctx);
/// Current log timestamp on this thread; false when no clock is installed.
bool log_clock_now(SimTime* out);

/// Human-readable name of a level ("debug"..."off"); parse_log_level is the
/// inverse (false on unknown names).
std::string_view log_level_name(LogLevel level);
bool parse_log_level(std::string_view name, LogLevel* out);

// -- in-process log ring ------------------------------------------------------
//
// Every emitted line (post level-filter, fully formatted) is also retained
// in a fixed-size in-process ring so the ctl server's /logz endpoint works
// even when nothing captures stderr. The ring is lock-free: writers claim a
// slot with one fetch_add and copy into a fixed char buffer guarded by a
// per-slot sequence word; readers validate the sequence around their copy
// and skip slots that were being rewritten mid-read. Lines longer than the
// slot are truncated (a '…'-free hard cut — /logz is a tail, not an
// archive).

/// Slots in the ring (compile-time constant, power of two).
std::size_t log_ring_capacity();

/// The most recent `max_lines` retained lines, oldest first. Thread-safe
/// against concurrent writers (torn slots are skipped).
std::vector<std::string> log_ring_recent(std::size_t max_lines);

/// Lines retained since process start (monotonic; wraps never reset it).
std::uint64_t log_ring_total();

/// Tests only: forget everything retained so far.
void log_ring_clear();

namespace detail {
void log_line(LogLevel level, std::string_view msg);

class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { log_line(level_, stream_.str()); }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace sora

#define SORA_LOG(level)                            \
  if (::sora::LogLevel::level < ::sora::log_level()) {} else \
    ::sora::detail::LogMessage(::sora::LogLevel::level)

#define SORA_DEBUG SORA_LOG(kDebug)
#define SORA_INFO SORA_LOG(kInfo)
#define SORA_WARN SORA_LOG(kWarn)
#define SORA_ERROR SORA_LOG(kError)
