// Minimal leveled logging for the simulator and framework components.
// Defaults to WARN so benchmark output stays clean; tests and examples can
// raise verbosity.
//
// Every line is prefixed with its level tag, and — when a simulator has
// installed a log clock — the current sim time, so interleaved control-loop
// logs are attributable:
//
//   [INFO 15.000s] adapter: cart/threads 5 -> 12 (knee 9.6)
#pragma once

#include <iostream>
#include <sstream>
#include <string_view>

#include "common/time.h"

namespace sora {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are discarded.
LogLevel log_level();
void set_log_level(LogLevel level);

/// Install a sim-time source for log timestamps. The registration slot is
/// thread-local: each thread sees the clock of the Simulator running on it,
/// so concurrent sweep workers (harness::SweepRunner) never clobber each
/// other's timestamps. `ctx` identifies the owner (the Simulator registers
/// itself on construction); clear_log_clock(ctx) is a no-op if a different
/// owner has since installed its own clock on the same thread, so
/// short-lived simulators never tear down a longer-lived one's clock.
using LogClockFn = SimTime (*)(const void* ctx);
void set_log_clock(const void* ctx, LogClockFn fn);
void clear_log_clock(const void* ctx);
/// Current log timestamp on this thread; false when no clock is installed.
bool log_clock_now(SimTime* out);

namespace detail {
void log_line(LogLevel level, std::string_view msg);

class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { log_line(level_, stream_.str()); }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace sora

#define SORA_LOG(level)                            \
  if (::sora::LogLevel::level < ::sora::log_level()) {} else \
    ::sora::detail::LogMessage(::sora::LogLevel::level)

#define SORA_DEBUG SORA_LOG(kDebug)
#define SORA_INFO SORA_LOG(kInfo)
#define SORA_WARN SORA_LOG(kWarn)
#define SORA_ERROR SORA_LOG(kError)
