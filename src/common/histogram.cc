#include "common/histogram.h"

#include <algorithm>
#include <bit>
#include <cassert>

namespace sora {

// Bucket layout: values v < 2^sub_bits are stored exactly at index v.
// Larger values fall in geometric ranges; range `shift` covers
// [2^(sub_bits+shift), 2^(sub_bits+shift+1)) split into 2^sub_bits linear
// sub-buckets, at indices (shift+1)*2^sub_bits + sub. The layout is
// contiguous: index(2^sub_bits - 1) + 1 == index(2^sub_bits).

LatencyHistogram::LatencyHistogram(int sub_bits)
    : sub_bits_(sub_bits),
      sub_count_(1ULL << sub_bits),
      buckets_(static_cast<std::size_t>(65 - sub_bits) * sub_count_, 0) {}

std::size_t LatencyHistogram::bucket_index(std::uint64_t v) const {
  if (v < sub_count_) return static_cast<std::size_t>(v);
  const int msb = 63 - std::countl_zero(v);
  const int shift = msb - sub_bits_;
  const std::uint64_t sub = (v >> shift) - sub_count_;
  return static_cast<std::size_t>(shift + 1) * sub_count_ +
         static_cast<std::size_t>(sub);
}

std::uint64_t LatencyHistogram::bucket_low(std::size_t idx) const {
  if (idx < sub_count_) return idx;
  const std::size_t shift = idx / sub_count_ - 1;
  const std::uint64_t sub = idx % sub_count_;
  return (sub_count_ + sub) << shift;
}

std::uint64_t LatencyHistogram::bucket_high(std::size_t idx) const {
  if (idx < sub_count_) return idx;
  const std::size_t shift = idx / sub_count_ - 1;
  const std::uint64_t sub = idx % sub_count_;
  return ((sub_count_ + sub + 1) << shift) - 1;
}

void LatencyHistogram::record(SimTime value) {
  const std::uint64_t v = value < 0 ? 0 : static_cast<std::uint64_t>(value);
  const std::size_t idx = bucket_index(v);
  assert(idx < buckets_.size());
  ++buckets_[idx];
  ++count_;
  sum_ += static_cast<double>(v);
  if (count_ == 1) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  assert(sub_bits_ == other.sub_bits_);
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (other.count_ > 0) {
    if (count_ == 0) {
      min_ = other.min_;
      max_ = other.max_;
    } else {
      min_ = std::min(min_, other.min_);
      max_ = std::max(max_, other.max_);
    }
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void LatencyHistogram::reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  min_ = max_ = 0;
}

double LatencyHistogram::mean() const {
  return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

SimTime LatencyHistogram::percentile(double p) const {
  if (count_ == 0) return kNoSampleTime;
  const double clamped = std::clamp(p, 0.0, 100.0);
  const auto target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(clamped / 100.0 *
                                    static_cast<double>(count_) + 0.5));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    seen += buckets_[i];
    if (seen >= target) {
      const std::uint64_t lo = bucket_low(i);
      const std::uint64_t hi = bucket_high(i);
      const std::uint64_t mid = lo + (hi - lo) / 2;
      // Clamp the representative value into the observed range so that e.g.
      // p100 never exceeds the true max.
      return std::clamp<SimTime>(static_cast<SimTime>(mid), min_, max_);
    }
  }
  return max_;
}

std::uint64_t LatencyHistogram::count_at_or_below(SimTime threshold) const {
  if (threshold < 0 || count_ == 0) return 0;
  if (threshold >= max_) return count_;
  const std::size_t limit = bucket_index(static_cast<std::uint64_t>(threshold));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i <= limit && i < buckets_.size(); ++i) {
    seen += buckets_[i];
  }
  return seen;
}

LinearHistogram::LinearHistogram(double bucket_width, std::size_t num_buckets)
    : width_(bucket_width), counts_(num_buckets, 0) {
  assert(bucket_width > 0.0 && num_buckets > 0);
}

void LinearHistogram::record(double value) { record_n(value, 1); }

void LinearHistogram::record_n(double value, std::uint64_t n) {
  if (n == 0) return;
  const double v = std::max(value, 0.0);
  auto idx = static_cast<std::size_t>(v / width_);
  idx = std::min(idx, counts_.size() - 1);
  counts_[idx] += n;
  total_ += n;
}

void LinearHistogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_ = 0;
}

double LinearHistogram::bucket_center(std::size_t i) const {
  return (static_cast<double>(i) + 0.5) * width_;
}

}  // namespace sora
