#include "common/table.h"

#include <algorithm>
#include <cstdint>
#include <ostream>
#include <sstream>

namespace sora {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

TextTable& TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

void TextTable::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    out << "| ";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      out << cell << std::string(widths[c] - cell.size(), ' ');
      out << (c + 1 < headers_.size() ? " | " : " |");
    }
    out << '\n';
  };
  print_row(headers_);
  out << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << "|";
  }
  out << '\n';
  for (const auto& row : rows_) print_row(row);
}

void TextTable::print_csv(std::ostream& out) const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string q = "\"";
    for (char ch : s) {
      if (ch == '"') q += '"';
      q += ch;
    }
    q += '"';
    return q;
  };
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << quote(row[c]);
      if (c + 1 < row.size()) out << ',';
    }
    out << '\n';
  };
  print_row(headers_);
  for (const auto& row : rows_) print_row(row);
}

std::string fmt(double v, int precision) {
  std::ostringstream ss;
  ss.setf(std::ios::fixed);
  ss.precision(precision);
  ss << v;
  return ss.str();
}

std::string fmt_count(std::uint64_t v) {
  std::ostringstream ss;
  ss << v;
  return ss.str();
}

}  // namespace sora
