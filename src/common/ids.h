// Strong identifier types.
//
// Distinct tag types prevent accidentally passing, say, a ServiceId where a
// RequestId is expected. Ids are cheap value types (a single uint64).
#pragma once

#include <cstdint>
#include <functional>

namespace sora {

/// A strongly-typed integer identifier. `Tag` is an empty struct used only
/// to make different id families incompatible at compile time.
template <typename Tag>
class Id {
 public:
  constexpr Id() = default;
  constexpr explicit Id(std::uint64_t v) : value_(v) {}

  constexpr std::uint64_t value() const { return value_; }
  constexpr bool valid() const { return value_ != kInvalid; }

  friend constexpr bool operator==(Id a, Id b) { return a.value_ == b.value_; }
  friend constexpr bool operator!=(Id a, Id b) { return a.value_ != b.value_; }
  friend constexpr bool operator<(Id a, Id b) { return a.value_ < b.value_; }

  static constexpr std::uint64_t kInvalid = UINT64_MAX;

 private:
  std::uint64_t value_ = kInvalid;
};

struct ServiceTag {};
struct InstanceTag {};
struct RequestTag {};
struct TraceTag {};
struct SpanTag {};

using ServiceId = Id<ServiceTag>;    ///< A logical microservice (e.g. "cart").
using InstanceId = Id<InstanceTag>;  ///< One replica/pod of a service.
using RequestId = Id<RequestTag>;    ///< One end-user request.
using TraceId = Id<TraceTag>;        ///< Distributed trace of one request.
using SpanId = Id<SpanTag>;          ///< One service visit within a trace.

/// Monotonic id generator; one per id family per simulation.
template <typename IdT>
class IdGenerator {
 public:
  IdT next() { return IdT(next_++); }

 private:
  std::uint64_t next_ = 0;
};

}  // namespace sora

namespace std {
template <typename Tag>
struct hash<sora::Id<Tag>> {
  size_t operator()(sora::Id<Tag> id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value());
  }
};
}  // namespace std
