// Sock Shop benchmark application (microservices-demo), as deployed in the
// paper's testbed (Figure 2i): an e-commerce site whose component services
// are heterogeneous — the SpringBoot Cart manages an explicit server thread
// pool, the Golang Catalogue delegates request concurrency to goroutines
// but gates its database access with a connection pool.
//
// CPU demands are calibrated so that a 4-core Cart saturates around the
// request rates the figure benches drive, and so that threads spend most of
// their time blocked on the database — which is why the optimal thread pool
// (tens) far exceeds the core count, as in the paper.
#pragma once

#include "svc/config.h"

namespace sora::sock_shop {

/// Request classes.
enum RequestClass : int {
  kBrowse = 0,    ///< front-end -> {cart, catalogue} -> dbs   (Figure 5)
  kCart = 1,      ///< front-end -> cart -> cart-db, user
  kCheckout = 2,  ///< front-end -> orders -> {payment, user, cart}, shipping
};

struct Params {
  // Cart (SpringBoot): server thread pool is the experiment knob.
  double cart_cores = 2.0;
  int cart_threads = 5;
  double cart_overhead = 0.25;

  // Catalogue (Golang): DB connection pool is the experiment knob.
  double catalogue_cores = 4.0;
  int catalogue_db_connections = 10;

  // Databases (cart-db must have headroom so Cart, not the DB, bottlenecks
  // the browse path — see calibration notes in sock_shop.cc).
  double db_cores = 8.0;

  // Global demand scale (1.0 = calibrated defaults).
  double demand_scale = 1.0;
};

/// Build the Sock Shop topology. Entry service is "front-end" for all
/// request classes.
ApplicationConfig make_sock_shop(const Params& params = {});

}  // namespace sora::sock_shop
