#include "apps/social_network.h"

namespace sora::social_network {

namespace {
constexpr int kLight = kReadTimelineLight;
constexpr int kCompose = kComposePost;
constexpr int kHeavy = kReadTimelineHeavy;
}  // namespace

ApplicationConfig make_social_network(const Params& params) {
  const double ds = params.demand_scale;
  ApplicationConfig app;

  // ---- nginx front-end ----------------------------------------------------
  {
    ServiceConfig s;
    s.name = "nginx-front-end";
    s.with_cores(8).with_overhead(0.1).with_entry_pool(0);
    s.with_demand(kLight, 150 * ds, 100 * ds, 0.4);
    s.with_call(kLight, "home-timeline");
    s.with_demand(kHeavy, 150 * ds, 100 * ds, 0.4);
    s.with_call(kHeavy, "home-timeline");
    s.with_demand(kCompose, 200 * ds, 120 * ds, 0.4);
    s.with_call(kCompose, "compose-post");
    app.services.push_back(s);
  }

  // ---- read path ------------------------------------------------------------
  {
    ServiceConfig s;
    s.name = "home-timeline";
    s.with_cores(params.home_timeline_cores)
        .with_overhead(0.15)
        .with_entry_pool(params.home_timeline_threads);
    s.with_edge_pool("post-storage", params.post_storage_connections,
                     PoolKind::kClientConnections);
    // Read the timeline index from redis, then fetch posts.
    s.with_demand(kLight, 600 * ds, 350 * ds, 0.6);
    s.with_call(kLight, "home-timeline-redis");
    s.with_call(kLight, "post-storage");
    s.with_demand(kHeavy, 700 * ds, 450 * ds, 0.6);
    s.with_call(kHeavy, "home-timeline-redis");
    s.with_call(kHeavy, "post-storage");
    app.services.push_back(s);
  }
  {
    ServiceConfig s;
    s.name = "home-timeline-redis";
    s.with_cores(2).with_overhead(0.1).with_entry_pool(256);
    s.with_demand(kLight, 300 * ds, 0, 0.5);
    s.with_demand(kHeavy, 350 * ds, 0, 0.5);
    s.with_demand(kCompose, 250 * ds, 0, 0.5);
    app.services.push_back(s);
  }
  {
    ServiceConfig s;
    s.name = "post-storage";
    s.with_cores(params.post_storage_cores)
        .with_overhead(params.post_storage_overhead)
        .with_entry_pool(0)
        .with_replicas(params.post_storage_replicas);
    // Light request: 2 posts - memcached hit plus one mongo fetch.
    s.with_demand(kLight, 900 * ds, 500 * ds, 0.7);
    s.with_call(kLight, "post-storage-memcached");
    s.with_call(kLight, "post-storage-mongo");
    // Heavy request: 10 posts - more local computation, and the bulk of the
    // extra work lands on MongoDB (longer connection-holding time), which
    // is what shifts the optimal connection count up (Figure 3f).
    s.with_demand(kHeavy, 3500 * ds, 1500 * ds, 0.7);
    s.with_call(kHeavy, "post-storage-memcached");
    s.with_call(kHeavy, "post-storage-mongo");
    // Compose writes one post.
    s.with_demand(kCompose, 1100 * ds, 500 * ds, 0.7);
    s.with_call(kCompose, "post-storage-mongo");
    app.services.push_back(s);
  }
  {
    ServiceConfig s;
    s.name = "post-storage-memcached";
    s.with_cores(2).with_overhead(0.1).with_entry_pool(512);
    s.with_demand(kLight, 250 * ds, 0, 0.4);
    s.with_demand(kHeavy, 500 * ds, 0, 0.4);
    app.services.push_back(s);
  }
  {
    ServiceConfig s;
    s.name = "post-storage-mongo";
    s.with_cores(params.mongo_cores).with_overhead(0.1).with_entry_pool(512);
    s.with_demand(kLight, 1400 * ds, 0, 0.8);
    s.with_demand(kHeavy, 6500 * ds, 0, 0.8);
    s.with_demand(kCompose, 1800 * ds, 0, 0.8);
    app.services.push_back(s);
  }

  // ---- compose path -----------------------------------------------------------
  {
    ServiceConfig s;
    s.name = "compose-post";
    s.with_cores(2).with_overhead(0.2).with_entry_pool(64);
    s.with_demand(kCompose, 900 * ds, 600 * ds, 0.6);
    s.with_parallel_calls(kCompose, {"unique-id", "media", "user", "text"});
    s.with_parallel_calls(kCompose,
                          {"post-storage", "user-timeline", "write-home-timeline"});
    app.services.push_back(s);
  }
  {
    ServiceConfig s;
    s.name = "unique-id";
    s.with_cores(1).with_overhead(0.1).with_entry_pool(64);
    s.with_demand(kCompose, 200 * ds, 0, 0.3);
    app.services.push_back(s);
  }
  {
    ServiceConfig s;
    s.name = "media";
    s.with_cores(2).with_overhead(0.15).with_entry_pool(64);
    s.with_demand(kCompose, 800 * ds, 300 * ds, 0.6);
    s.with_call(kCompose, "media-mongo");
    app.services.push_back(s);
  }
  {
    ServiceConfig s;
    s.name = "media-mongo";
    s.with_cores(2).with_overhead(0.1).with_entry_pool(256);
    s.with_demand(kCompose, 1200 * ds, 0, 0.7);
    app.services.push_back(s);
  }
  {
    ServiceConfig s;
    s.name = "user";
    s.with_cores(2).with_overhead(0.15).with_entry_pool(64);
    s.with_demand(kCompose, 500 * ds, 200 * ds, 0.5);
    s.with_call(kCompose, "user-mongo");
    app.services.push_back(s);
  }
  {
    ServiceConfig s;
    s.name = "user-mongo";
    s.with_cores(2).with_overhead(0.1).with_entry_pool(256);
    s.with_demand(kCompose, 900 * ds, 0, 0.6);
    app.services.push_back(s);
  }
  {
    ServiceConfig s;
    s.name = "text";
    s.with_cores(2).with_overhead(0.15).with_entry_pool(64);
    s.with_demand(kCompose, 700 * ds, 300 * ds, 0.6);
    s.with_parallel_calls(kCompose, {"url-shorten", "user-tag"});
    app.services.push_back(s);
  }
  {
    ServiceConfig s;
    s.name = "url-shorten";
    s.with_cores(1).with_overhead(0.1).with_entry_pool(64);
    s.with_demand(kCompose, 400 * ds, 0, 0.4);
    app.services.push_back(s);
  }
  {
    ServiceConfig s;
    s.name = "user-tag";
    s.with_cores(1).with_overhead(0.1).with_entry_pool(64);
    s.with_demand(kCompose, 450 * ds, 0, 0.4);
    app.services.push_back(s);
  }
  {
    ServiceConfig s;
    s.name = "user-timeline";
    s.with_cores(2).with_overhead(0.15).with_entry_pool(64);
    s.with_demand(kCompose, 600 * ds, 250 * ds, 0.5);
    s.with_call(kCompose, "user-timeline-mongo");
    app.services.push_back(s);
  }
  {
    ServiceConfig s;
    s.name = "user-timeline-mongo";
    s.with_cores(2).with_overhead(0.1).with_entry_pool(256);
    s.with_demand(kCompose, 1100 * ds, 0, 0.7);
    app.services.push_back(s);
  }
  {
    ServiceConfig s;
    s.name = "write-home-timeline";
    s.with_cores(2).with_overhead(0.15).with_entry_pool(64);
    s.with_demand(kCompose, 700 * ds, 300 * ds, 0.6);
    s.with_call(kCompose, "social-graph");
    s.with_call(kCompose, "home-timeline-redis");
    app.services.push_back(s);
  }
  {
    ServiceConfig s;
    s.name = "social-graph";
    s.with_cores(2).with_overhead(0.15).with_entry_pool(64);
    s.with_demand(kCompose, 500 * ds, 200 * ds, 0.5);
    s.with_call(kCompose, "social-graph-redis");
    app.services.push_back(s);
  }
  {
    ServiceConfig s;
    s.name = "social-graph-redis";
    s.with_cores(2).with_overhead(0.1).with_entry_pool(256);
    s.with_demand(kCompose, 400 * ds, 0, 0.5);
    app.services.push_back(s);
  }

  app.entry_service[kLight] = "nginx-front-end";
  app.entry_service[kCompose] = "nginx-front-end";
  app.entry_service[kHeavy] = "nginx-front-end";
  return app;
}

}  // namespace sora::social_network
