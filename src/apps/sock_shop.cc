#include "apps/sock_shop.h"

namespace sora::sock_shop {

// Demand calibration notes (microseconds of CPU per request):
//  * Cart threads spend most of their time blocked on cart-db, so the
//    optimal thread pool is several times the core count (paper Fig. 3).
//  * cart-db is provisioned with enough cores that a 4-core Cart, not the
//    database, is the bottleneck of the browse/cart paths.
//  * catalogue-db on 4 cores with ~2.2 ms requests puts the DB-connection
//    knee in the 10-20 range at ~10 ms thresholds (paper Fig. 9b).
ApplicationConfig make_sock_shop(const Params& params) {
  const double ds = params.demand_scale;
  ApplicationConfig app;

  // ---- front-end (Node.js-style, high parallelism) -------------------------
  {
    ServiceConfig s;
    s.name = "front-end";
    s.with_cores(8).with_overhead(0.1).with_entry_pool(0);
    // kBrowse: parallel fan-out to cart + catalogue + recommender (Fig. 5).
    s.with_demand(kBrowse, 250 * ds, 150 * ds, 0.5);
    s.with_parallel_calls(kBrowse, {"cart", "catalogue", "recommender"});
    // kCart: cart then user, sequentially.
    s.with_demand(kCart, 250 * ds, 150 * ds, 0.5);
    s.with_call(kCart, "cart");
    s.with_call(kCart, "user");
    // kCheckout: orders pipeline.
    s.with_demand(kCheckout, 300 * ds, 200 * ds, 0.5);
    s.with_call(kCheckout, "orders");
    app.services.push_back(s);
  }

  // ---- cart (SpringBoot; server thread pool = knob) -------------------------
  {
    ServiceConfig s;
    s.name = "cart";
    s.with_cores(params.cart_cores)
        .with_overhead(params.cart_overhead)
        .with_entry_pool(params.cart_threads, PoolKind::kServerThreads);
    s.with_demand(kBrowse, 1100 * ds, 700 * ds, 0.7);
    s.with_call(kBrowse, "cart-db");
    s.with_demand(kCart, 1300 * ds, 800 * ds, 0.7);
    s.with_call(kCart, "cart-db");
    s.with_demand(kCheckout, 900 * ds, 600 * ds, 0.7);
    s.with_call(kCheckout, "cart-db");
    app.services.push_back(s);
  }
  {
    ServiceConfig s;
    s.name = "cart-db";
    s.with_cores(params.db_cores).with_overhead(0.1).with_entry_pool(512);
    s.with_demand(kBrowse, 2500 * ds, 0, 0.8);
    s.with_demand(kCart, 3200 * ds, 0, 0.8);
    s.with_demand(kCheckout, 2800 * ds, 0, 0.8);
    app.services.push_back(s);
  }

  // ---- catalogue (Golang; DB connection pool = knob) -------------------------
  {
    ServiceConfig s;
    s.name = "catalogue";
    s.with_cores(params.catalogue_cores).with_overhead(0.15).with_entry_pool(0);
    s.with_edge_pool("catalogue-db", params.catalogue_db_connections,
                     PoolKind::kDbConnections);
    s.with_demand(kBrowse, 700 * ds, 400 * ds, 0.6);
    s.with_call(kBrowse, "catalogue-db");
    app.services.push_back(s);
  }
  {
    ServiceConfig s;
    s.name = "catalogue-db";
    s.with_cores(4).with_overhead(0.1).with_entry_pool(512);
    s.with_demand(kBrowse, 1600 * ds, 0, 0.7);
    app.services.push_back(s);
  }

  // ---- user -------------------------------------------------------------------
  {
    ServiceConfig s;
    s.name = "user";
    s.with_cores(2).with_overhead(0.15).with_entry_pool(64);
    s.with_demand(kCart, 800 * ds, 400 * ds, 0.6);
    s.with_call(kCart, "user-db");
    s.with_demand(kCheckout, 700 * ds, 300 * ds, 0.6);
    s.with_call(kCheckout, "user-db");
    app.services.push_back(s);
  }
  {
    ServiceConfig s;
    s.name = "user-db";
    s.with_cores(2).with_overhead(0.1).with_entry_pool(256);
    s.with_demand(kCart, 1500 * ds, 0, 0.7);
    s.with_demand(kCheckout, 1200 * ds, 0, 0.7);
    app.services.push_back(s);
  }

  // ---- orders pipeline ---------------------------------------------------------
  {
    ServiceConfig s;
    s.name = "orders";
    s.with_cores(2).with_overhead(0.2).with_entry_pool(64);
    s.with_demand(kCheckout, 1500 * ds, 1000 * ds, 0.6);
    s.with_parallel_calls(kCheckout, {"payment", "user", "cart"});
    s.with_call(kCheckout, "order-db");
    s.with_call(kCheckout, "shipping");
    app.services.push_back(s);
  }
  {
    ServiceConfig s;
    s.name = "order-db";
    s.with_cores(2).with_overhead(0.1).with_entry_pool(256);
    s.with_demand(kCheckout, 2000 * ds, 0, 0.7);
    app.services.push_back(s);
  }
  {
    ServiceConfig s;
    s.name = "payment";
    s.with_cores(1).with_overhead(0.15).with_entry_pool(32);
    s.with_demand(kCheckout, 900 * ds, 0, 0.5);
    app.services.push_back(s);
  }
  {
    ServiceConfig s;
    s.name = "shipping";
    s.with_cores(1).with_overhead(0.15).with_entry_pool(32);
    s.with_demand(kCheckout, 800 * ds, 300 * ds, 0.5);
    s.with_call(kCheckout, "queue-master");
    app.services.push_back(s);
  }
  {
    ServiceConfig s;
    s.name = "queue-master";
    s.with_cores(1).with_overhead(0.1).with_entry_pool(32);
    s.with_demand(kCheckout, 600 * ds, 0, 0.5);
    app.services.push_back(s);
  }

  // ---- recommender ---------------------------------------------------------------
  {
    ServiceConfig s;
    s.name = "recommender";
    s.with_cores(4).with_overhead(0.15).with_entry_pool(128);
    s.with_demand(kBrowse, 900 * ds, 0, 0.6);
    app.services.push_back(s);
  }

  app.entry_service[kBrowse] = "front-end";
  app.entry_service[kCart] = "front-end";
  app.entry_service[kCheckout] = "front-end";
  return app;
}

}  // namespace sora::sock_shop
