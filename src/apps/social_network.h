// Social Network benchmark application (DeathStarBench), per Figure 2(ii):
// a broadcast-style social network. The Apache Thrift services gate their
// RPCs with ClientPool connection pools — the Home-Timeline -> Post Storage
// pool is the experiment knob of Figures 9(c) and 12.
//
// Request classes model the paper's "system state drifting": the same
// Read-Home-Timeline call graph with light (retrieve 2 posts) vs heavy
// (retrieve 10 posts) computation at Post Storage and its MongoDB.
#pragma once

#include "svc/config.h"

namespace sora::social_network {

enum RequestClass : int {
  kReadTimelineLight = 0,  ///< retrieve 2 posts
  kComposePost = 1,
  kReadTimelineHeavy = 2,  ///< retrieve 10 posts (state drift)
};

struct Params {
  // Post Storage (Thrift): ClientPool from Home-Timeline is the knob.
  double post_storage_cores = 2.0;
  int post_storage_connections = 10;  ///< per Home-Timeline replica
  double post_storage_overhead = 0.2;
  int post_storage_replicas = 1;

  double home_timeline_cores = 4.0;
  int home_timeline_threads = 64;

  double mongo_cores = 8.0;

  double demand_scale = 1.0;
};

/// Build the Social Network topology. Entry service is "nginx-front-end".
ApplicationConfig make_social_network(const Params& params = {});

}  // namespace sora::social_network
