// Example: soft-resource adaptation under system-state drifting.
//
// Social Network serves its Read-Home-Timeline flow; mid-run the request
// type drifts from light (2 posts) to heavy (10 posts), as when a dataset
// grows. Kubernetes HPA scales Post Storage horizontally; Sora keeps the
// Home-Timeline -> Post Storage connection pool matched to the replica
// count and to the new per-request weight (paper Section 5.3).
//
//   ./build/examples/social_network_drift
#include <iostream>

#include "apps/social_network.h"
#include "common/table.h"
#include "harness/experiment.h"

using namespace sora;

int main() {
  social_network::Params params;
  params.post_storage_connections = 10;  // optimal for light requests
  ExperimentConfig cfg;
  cfg.duration = minutes(6);
  cfg.sla = msec(400);
  cfg.seed = 2;
  Experiment exp(social_network::make_social_network(params), cfg);

  const WorkloadTrace trace(TraceShape::kLargeVariation, cfg.duration, 500,
                            1700);
  auto& users = exp.closed_loop(
      500, sec(1), RequestMix(social_network::kReadTimelineLight));
  users.follow_trace(trace);

  const SimTime drift_at = cfg.duration / 2;
  exp.sim().schedule_at(drift_at, [&users] {
    users.set_mix(RequestMix(social_network::kReadTimelineHeavy));
  });

  HpaOptions hpa_opts;
  hpa_opts.max_replicas = 4;
  auto& hpa = exp.add_hpa(hpa_opts);
  hpa.manage(exp.app().service("post-storage"));

  SoraFrameworkOptions sora_opts;
  sora_opts.sla = cfg.sla;
  auto& sora = exp.add_sora(sora_opts);
  const ResourceKnob knob =
      ResourceKnob::edge(exp.app().service("home-timeline"), "post-storage");
  sora.manage(knob);
  Experiment::link(hpa, sora);

  exp.track_service("home-timeline", "post-storage");
  exp.track_service("post-storage");
  exp.run();

  const ExperimentSummary s = exp.summary();
  std::cout << "=== Social Network, light->heavy drift at t="
            << to_sec(drift_at) << "s ===\n";
  std::cout << "p99 latency: " << fmt(s.p99_ms) << " ms, goodput "
            << fmt(s.goodput_rps) << " req/s\n\n";

  std::cout << "Post Storage replicas / connection pool over time:\n";
  TextTable t({"t[s]", "PS replicas", "conns to PS (total)", "PS util [%]"});
  const auto& ps = exp.timeline("post-storage");
  const auto& ht = exp.timeline("home-timeline");
  for (std::size_t i = 29; i < ps.size() && i < ht.size(); i += 30) {
    t.add_row({fmt(to_sec(ps[i].at), 0), fmt_count(ps[i].replicas),
               fmt_count(ht[i].edge_capacity), fmt(ps[i].util_pct, 0)});
  }
  t.print(std::cout);

  std::cout << "\nfinal: " << exp.app().service("post-storage")->active_replicas()
            << " Post Storage replicas, " << knob.total_capacity()
            << " total connections (" << knob.current_size()
            << " per Home-Timeline replica)\n";
  std::cout << "propagated RTT for Post Storage: "
            << fmt(to_msec(sora.estimator().rt_threshold(knob)), 1) << " ms\n";
  return 0;
}
