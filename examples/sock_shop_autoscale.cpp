// Example: coordinated hardware + soft-resource scaling on Sock Shop.
//
// Reproduces the paper's headline scenario in miniature: a FIRM-style
// vertical autoscaler manages the Cart pod's CPU limit while Sora manages
// its server thread pool; the two are linked so every hardware scale event
// triggers proportional soft-resource re-adaptation and model reset.
//
//   ./build/examples/sock_shop_autoscale
#include <iostream>

#include "apps/sock_shop.h"
#include "common/table.h"
#include "harness/experiment.h"

using namespace sora;

int main() {
  sock_shop::Params params;
  params.cart_cores = 2.0;   // initial pod limit
  params.cart_threads = 5;   // pre-profiled for the 2-core limit

  ExperimentConfig cfg;
  cfg.duration = minutes(6);
  cfg.sla = msec(400);
  cfg.seed = 1;
  Experiment exp(sock_shop::make_sock_shop(params), cfg);

  // Steep Tri Phase: two steep overload episodes (paper Figure 10).
  const WorkloadTrace trace(TraceShape::kSteepTriPhase, cfg.duration, 600,
                            2400);
  auto& users = exp.closed_loop(600, sec(1), RequestMix(sock_shop::kBrowse));
  users.follow_trace(trace);

  // Hardware plane: FIRM-like vertical scaler, 2 -> 4 cores.
  FirmOptions firm_opts;
  firm_opts.slo_latency = cfg.sla;
  firm_opts.min_cores = 2.0;
  firm_opts.max_cores = 4.0;
  auto& firm = exp.add_firm(firm_opts);
  firm.manage(exp.app().service("cart"));

  // Soft plane: Sora manages the Cart thread pool.
  SoraFrameworkOptions sora_opts;
  sora_opts.sla = cfg.sla;
  auto& sora = exp.add_sora(sora_opts);
  const ResourceKnob knob = ResourceKnob::entry(exp.app().service("cart"));
  sora.manage(knob);
  Experiment::link(firm, sora);

  exp.track_service("cart");
  exp.run();

  const ExperimentSummary s = exp.summary();
  std::cout << "=== Sock Shop + FIRM + Sora (" << to_sec(cfg.duration)
            << "s simulated) ===\n";
  std::cout << "p95 / p99 latency: " << fmt(s.p95_ms) << " / " << fmt(s.p99_ms)
            << " ms\n";
  std::cout << "goodput (SLA " << to_msec(cfg.sla)
            << "ms): " << fmt(s.goodput_rps) << " req/s\n";

  std::cout << "\nhardware scale events:\n";
  for (const ScaleEvent& ev : firm.history()) {
    std::cout << "  t=" << fmt(to_sec(ev.at), 0) << "s cart cores "
              << ev.old_cores << " -> " << ev.new_cores << "\n";
  }
  std::cout << "\nsoft-resource adaptations:\n";
  int shown = 0;
  for (const AdaptAction& a : sora.adapter().history()) {
    if (a.type == AdaptAction::Type::kNone) continue;
    std::cout << "  t=" << fmt(to_sec(a.at), 0) << "s cart threads "
              << a.old_size << " -> " << a.new_size << " ("
              << to_string(a.type) << ")\n";
    if (++shown >= 20) break;
  }
  std::cout << "\nfinal: cart " << exp.app().service("cart")->cpu_limit()
            << " cores, " << knob.current_size() << " threads\n";
  return 0;
}
