// Quickstart: simulate Sock Shop under bursty load, let Sora manage the
// Cart thread pool, and print what the SCG model learned.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>

#include "apps/sock_shop.h"
#include "common/table.h"
#include "harness/experiment.h"

using namespace sora;

int main() {
  // 1. Describe the system under test: the Sock Shop application with a
  //    2-core Cart capped at 5 server threads.
  sock_shop::Params params;
  params.cart_cores = 2.0;
  params.cart_threads = 5;

  ExperimentConfig cfg;
  cfg.duration = minutes(3);
  cfg.sla = msec(250);
  cfg.seed = 7;

  Experiment exp(sock_shop::make_sock_shop(params), cfg);

  // 2. Drive it with the "Large Variation" bursty trace: a closed-loop
  //    (RUBBoS-style) user population following the trace between 250 and
  //    900 concurrent users.
  const WorkloadTrace trace(TraceShape::kLargeVariation, cfg.duration,
                            /*base users=*/250, /*peak users=*/900);
  auto& users = exp.closed_loop(250, sec(1), RequestMix(sock_shop::kBrowse));
  users.follow_trace(trace);

  // 3. Attach Sora: SCG model + deadline propagation, managing the Cart
  //    thread pool.
  SoraFrameworkOptions sora_opts;
  sora_opts.sla = cfg.sla;
  SoraFramework& sora = exp.add_sora(sora_opts);
  sora.manage(ResourceKnob::entry(exp.app().service("cart")));

  exp.track_service("cart");

  // 4. Run.
  exp.run();

  // 5. Report.
  const ExperimentSummary s = exp.summary();
  std::cout << "=== Quickstart: Sock Shop + Sora (3 simulated minutes) ===\n";
  std::cout << "requests injected:   " << s.injected << "\n";
  std::cout << "requests completed:  " << s.completed << "\n";
  std::cout << "mean latency:        " << fmt(s.mean_ms) << " ms\n";
  std::cout << "p95 / p99 latency:   " << fmt(s.p95_ms) << " / " << fmt(s.p99_ms)
            << " ms\n";
  std::cout << "goodput (SLA " << to_msec(cfg.sla) << "ms): "
            << fmt(s.goodput_rps) << " req/s (" << fmt(100 * s.good_fraction, 1)
            << "% within SLA)\n\n";

  const ResourceKnob knob = ResourceKnob::entry(exp.app().service("cart"));
  const ConcurrencyEstimate est = sora.estimator().estimate(knob);
  std::cout << "SCG estimate for cart/threads:\n";
  if (est.valid) {
    std::cout << "  knee at concurrency " << fmt(est.knee_concurrency, 1)
              << " -> recommended pool size " << est.recommended << "\n";
    std::cout << "  fitted degree " << est.degree_used << ", R^2 "
              << fmt(est.r_squared, 3) << "\n";
  } else {
    std::cout << "  (no estimate: " << est.failure << ")\n";
  }
  std::cout << "current cart thread pool: "
            << exp.app().service("cart")->entry_pool_size() << " per replica\n";
  std::cout << "control rounds run: " << sora.control_rounds() << "\n";

  std::cout << "\ncart timeline (last 5 samples):\n";
  TextTable table({"t[s]", "util[%]", "limit[%]", "threads", "busy"});
  const auto& tl = exp.timeline("cart");
  const std::size_t from = tl.size() > 5 ? tl.size() - 5 : 0;
  for (std::size_t i = from; i < tl.size(); ++i) {
    const auto& p = tl[i];
    table.add_row({fmt(to_sec(p.at), 0), fmt(p.util_pct, 0),
                   fmt(p.limit_pct, 0), fmt_count(p.entry_capacity),
                   fmt(p.entry_in_use, 1)});
  }
  table.print(std::cout);
  return 0;
}
