// Example: bringing your own microservice topology.
//
// Shows the full public API surface without the prebuilt benchmarks:
//   1. declare services, pools, demands and the per-class call graph,
//   2. compile them into an Application,
//   3. drive load, watch knobs, and query the SCG model directly.
//
//   ./build/examples/custom_topology
#include <iostream>

#include "common/table.h"
#include "core/estimator.h"
#include "core/scg_model.h"
#include "harness/experiment.h"

using namespace sora;

int main() {
  // --- 1. Topology: api -> {auth, search -> index} ---------------------------
  ApplicationConfig topo;
  {
    ServiceConfig s;
    s.name = "api-gateway";
    s.with_cores(4).with_entry_pool(0).with_overhead(0.1);
    s.with_demand(0, 300, 200, 0.4);
    s.with_call(0, "auth");
    s.with_call(0, "search");
    topo.services.push_back(s);
  }
  {
    ServiceConfig s;
    s.name = "auth";
    s.with_cores(2).with_entry_pool(32).with_overhead(0.15);
    s.with_demand(0, 400, 0, 0.4);
    topo.services.push_back(s);
  }
  {
    ServiceConfig s;
    s.name = "search";
    // The knob under study: search gates its shard fan-out with a client
    // connection pool that starts under-allocated.
    s.with_cores(2).with_entry_pool(64).with_overhead(0.2);
    s.with_edge_pool("index", 2, PoolKind::kClientConnections);
    s.with_demand(0, 800, 500, 0.5);
    s.with_call(0, "index");
    topo.services.push_back(s);
  }
  {
    ServiceConfig s;
    s.name = "index";
    s.with_cores(4).with_entry_pool(256).with_overhead(0.1);
    s.with_demand(0, 2500, 0, 0.7);
    topo.services.push_back(s);
  }
  topo.entry_service[0] = "api-gateway";

  // --- 2. Experiment ----------------------------------------------------------
  ExperimentConfig cfg;
  cfg.duration = minutes(3);
  cfg.sla = msec(100);
  Experiment exp(std::move(topo), cfg);
  const WorkloadTrace trace(TraceShape::kQuickVarying, cfg.duration, 200, 900);
  auto& users = exp.closed_loop(200, sec(1));
  users.follow_trace(trace);

  // --- 3. Sora manages the search->index connection pool ---------------------
  SoraFrameworkOptions opts;
  opts.sla = cfg.sla;
  auto& sora = exp.add_sora(opts);
  const ResourceKnob knob =
      ResourceKnob::edge(exp.app().service("search"), "index");
  sora.manage(knob);

  exp.run();

  const ExperimentSummary s = exp.summary();
  std::cout << "=== custom topology: api -> {auth, search -> index} ===\n";
  std::cout << "completed " << s.completed << " requests, p99 "
            << fmt(s.p99_ms) << " ms, goodput " << fmt(s.goodput_rps)
            << " req/s\n";
  std::cout << "search->index connections: started at 2, now "
            << knob.current_size() << "\n";

  // Direct model access: inspect the learned main-sequence curve.
  const ScatterSampler* sampler = sora.estimator().sampler(knob);
  ScgModel model;
  const auto curve = model.aggregate(sampler->points());
  std::cout << "\nlearned concurrency -> goodput curve (tail):\n";
  TextTable t({"concurrency", "goodput [req/s]"});
  for (const auto& p : curve) t.add_row({fmt(p.concurrency, 0), fmt(p.value, 1)});
  t.print(std::cout);

  const auto est = model.estimate(sampler->points());
  if (est.valid) {
    std::cout << "SCG: knee at " << fmt(est.knee_concurrency, 1)
              << " -> optimal " << est.recommended << " connections\n";
  }

  // Who is critical right now?
  const auto& report = sora.last_report();
  if (report.critical.valid()) {
    std::cout << "critical service: "
              << exp.app().service_name(report.critical) << "\n";
  }
  return 0;
}
